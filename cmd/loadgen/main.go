// Command loadgen drives a running spmvserve instance with closed-loop
// load: for each (method, encoding, concurrency) sweep point it keeps N clients'
// requests in flight for the configured duration and reports
// throughput, latency percentiles, and the batch width the server's
// coalescing scheduler achieved — as JSON records cmd/benchdiff can
// pair across runs to gate serving regressions.
//
// Usage:
//
//	loadgen -url http://localhost:8080 -matrix powerlaw -conc 1,8,32
//	loadgen -url ... -methods s2d,1d,2d -k 16 -duration 5s -o LOADGEN.json
//	loadgen -url ... -encodings json,binary -nrhs 8       # wire protocol sweep
//	loadgen -url ... -auth $KEY -tenant alice             # keyed server
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/serve"
)

func main() {
	url := flag.String("url", "", "base URL of a running spmvserve (required)")
	matrix := flag.String("matrix", "", "matrix name registered on the server (required)")
	methods := flag.String("methods", "s2d", "comma-separated registry methods to sweep")
	k := flag.Int("k", 4, "part count")
	conc := flag.String("conc", "1,8,32", "comma-separated offered concurrency sweep")
	encodings := flag.String("encodings", "json", "comma-separated wire encodings to sweep (json,binary)")
	nrhs := flag.Int("nrhs", 1, "right-hand sides per request (>1 posts multi-vector requests)")
	authKey := flag.String("auth", "", "bearer key sent as Authorization (required against a keyed server)")
	tenant := flag.String("tenant", "", "tenant label stamped on the records")
	duration := flag.Duration("duration", 2*time.Second, "duration per sweep point")
	seed := flag.Int64("seed", 1, "seed for the request vector")
	out := flag.String("o", "", "write JSON records here (default stdout)")
	strict := flag.Bool("strict", true, "exit non-zero on request errors or batch width < 1")
	flag.Parse()

	if *url == "" || *matrix == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -url and -matrix are required")
		flag.Usage()
		os.Exit(2)
	}
	concs, err := cliutil.ParseIntList(*conc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: bad -conc: %v\n", err)
		os.Exit(2)
	}

	recs, err := serve.LoadGen(context.Background(), serve.LoadGenConfig{
		BaseURL:     strings.TrimRight(*url, "/"),
		Matrix:      *matrix,
		Methods:     cliutil.SplitList(*methods),
		K:           *k,
		Concurrency: concs,
		Encodings:   cliutil.SplitList(*encodings),
		NRHS:        *nrhs,
		AuthKey:     *authKey,
		Tenant:      *tenant,
		Duration:    *duration,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	bad := false
	for _, r := range recs {
		fmt.Fprintf(os.Stderr,
			"loadgen %-8s enc=%-6s nrhs=%-2d conc=%-3d %6d req %5.0f req/s batch %.2f p50 %.2fms p99 %.2fms errors %d retries %d\n",
			r.Method, r.Encoding, r.NRHS, r.Concurrency, r.Requests, r.RPS, r.MeanBatch, r.P50Ms, r.P99Ms, r.Errors, r.Retries)
		if r.Errors > 0 || r.Requests == 0 || r.MeanBatch < 1 {
			bad = true
		}
	}
	// JSON sweep points sample the server's own stage breakdown
	// (?timings=1 on every Nth request); surface where the time went.
	for _, r := range recs {
		if len(r.StageP99Ms) == 0 {
			continue
		}
		var b strings.Builder
		for _, st := range []string{
			serve.StageDecode, serve.StageAdmission, serve.StageQueue,
			serve.StageAssemble, serve.StageFlush, serve.StageEncode,
		} {
			if p99, ok := r.StageP99Ms[st]; ok {
				fmt.Fprintf(&b, "  %s %.3f/%.3f", st, r.StageP50Ms[st], p99)
			}
		}
		fmt.Fprintf(os.Stderr, "loadgen stages %-8s nrhs=%-2d conc=%-3d p50/p99 ms:%s\n",
			r.Method, r.NRHS, r.Concurrency, b.String())
	}
	if *strict && bad {
		fmt.Fprintln(os.Stderr, "loadgen: FAIL (errors or no batching; see records)")
		os.Exit(1)
	}
}
