// Command benchdiff compares two benchmark JSON result files and fails
// on performance regressions — the regression gates CI runs on every
// push against the committed BENCH_*.json (kernel) and LOADGEN_*.json
// (serving) baselines.
//
// Usage:
//
//	benchdiff -baseline BENCH_PR3.json -current new.json
//	benchdiff -baseline LOADGEN_PR8.json -current loadgen.json -tolerance 2
//	benchdiff -baseline old.json -current new.json -tolerance 1.5
//
// Two record kinds pair up, never across kinds: spmvbench -json kernel
// records by (method, matrix, seed, k, nrhs, schedule, rows), and
// serve.LoadGen serving records (kind "serve") additionally by the
// offered concurrency. A baseline written before the nrhs field existed
// reads as nrhs=1. The gate fails (exit 1) when:
//
//   - any current kernel record allocates: steady-state
//     Multiply/MultiplyBlock must stay at 0 allocs/op, no tolerance
//     (serving records are exempt — the HTTP/scheduling path allocates
//     per request by design);
//   - the geometric-mean ns/op ratio (current/baseline) over the paired
//     records exceeds -tolerance (default 1.25, i.e. a 25% slowdown) —
//     the geomean damps single-record noise while catching an across-
//     the-board regression. Serving records store 1e9/RPS as ns_per_op,
//     so the same ratio gates a requests/sec collapse;
//   - no records pair up at all (a scale/K mismatch would otherwise
//     pass vacuously).
//
// Exit codes: 0 ok, 1 regression, 2 usage or unreadable input.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	baseline := flag.String("baseline", "", "baseline BENCH_*.json (required)")
	current := flag.String("current", "", "freshly measured spmvbench -json output (required)")
	tolerance := flag.Float64("tolerance", 1.25, "maximum allowed geomean ns/op ratio current/baseline")
	flag.Parse()

	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: both -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}
	if *tolerance <= 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -tolerance %v: want > 0\n", *tolerance)
		os.Exit(2)
	}
	base, err := readRecords(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := readRecords(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	rep := diff(base, cur, *tolerance)
	rep.print(os.Stdout)
	if !rep.ok() {
		os.Exit(1)
	}
}
