package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// record mirrors the fields the gate needs from both record kinds:
// spmvbench -json kernel benchmarks (kind empty) and serve.LoadGen
// serving-throughput records (kind "serve", keyed additionally by the
// offered concurrency; ns_per_op there is 1e9/RPS, so the same
// slowdown-ratio math gates requests/sec). Op distinguishes forward
// records (empty) from transpose kernels ("transpose"); Kernel is the
// spmvbench -kernels selector ("" for the scalar reference, so pre-
// kernel baselines pair against scalar records and never against an
// autotuned run). Unknown fields are ignored, so older and newer
// baselines both load.
type record struct {
	Kind        string  `json:"kind"`
	Op          string  `json:"op"`
	Kernel      string  `json:"kernel"`
	Method      string  `json:"method"`
	Matrix      string  `json:"matrix"`
	Seed        int64   `json:"seed"`
	K           int     `json:"k"`
	NRHS        int     `json:"nrhs"`
	Encoding    string  `json:"encoding"`
	Tenant      string  `json:"tenant"`
	Concurrency int     `json:"concurrency"`
	Schedule    string  `json:"schedule"`
	Rows        int     `json:"rows"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// serving reports whether the record measures the serving layer rather
// than a raw kernel. Serving records are exempt from the 0-allocs gate:
// the HTTP and scheduling path allocates per request by design.
func (r record) serving() bool { return r.Kind == "serve" }

// key identifies one measurement across files. Rows is part of the key so
// runs at different -scale values never pair up: a cross-scale ns/op
// ratio measures the matrix size, not a regression.
type key struct {
	Kind        string
	Op          string
	Kernel      string
	Method      string
	Matrix      string
	Seed        int64
	K           int
	NRHS        int
	Encoding    string
	Tenant      string
	Concurrency int
	Schedule    string
	Rows        int
}

func (r record) key() key {
	nrhs := r.NRHS
	if nrhs == 0 {
		nrhs = 1 // baselines predating the nrhs field
	}
	enc := r.Encoding
	if r.serving() && enc == "" {
		enc = "json" // serve baselines predating the wire protocol
	}
	return key{r.Kind, r.Op, r.Kernel, r.Method, r.Matrix, r.Seed, r.K, nrhs, enc, r.Tenant, r.Concurrency, r.Schedule, r.Rows}
}

func (k key) String() string {
	s := fmt.Sprintf("%s/%s/seed=%d/K=%d/nrhs=%d/%s/n=%d",
		k.Method, k.Matrix, k.Seed, k.K, k.NRHS, k.Schedule, k.Rows)
	if k.Kernel != "" {
		s = s + "/kernel=" + k.Kernel
	}
	if k.Op != "" {
		s = k.Op + ":" + s
	}
	if k.Kind != "" {
		s = k.Kind + ":" + s + fmt.Sprintf("/conc=%d", k.Concurrency)
		if k.Encoding != "" {
			s += "/enc=" + k.Encoding
		}
		if k.Tenant != "" {
			s += "/tenant=" + k.Tenant
		}
	}
	return s
}

func readRecords(path string) ([]record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []record
	if err := json.NewDecoder(f).Decode(&recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark records", path)
	}
	return recs, nil
}

// pair is one baseline/current match.
type pair struct {
	key   key
	ratio float64 // current ns/op ÷ baseline ns/op
}

// report is the gate's verdict plus everything print needs to explain it.
type report struct {
	pairs        []pair
	geomean      float64
	tolerance    float64
	allocViolers []key
	baseOnly     []key
	curOnly      []key
	// badRecords lists every record (either file) with a non-positive
	// ns_per_op — a corrupted or zeroed measurement. Any such record
	// fails the gate: silently skipping it would shrink coverage with no
	// signal.
	badRecords []key
	// dropped lists key matches that could not be compared because one
	// side's ns_per_op was non-positive.
	dropped []key
}

func (r *report) ok() bool {
	return len(r.pairs) > 0 && len(r.allocViolers) == 0 &&
		len(r.badRecords) == 0 && r.geomean <= r.tolerance
}

// diff pairs the two record sets and computes the gate verdict.
func diff(base, cur []record, tolerance float64) *report {
	rep := &report{tolerance: tolerance}
	baseBy := make(map[key]record, len(base))
	for _, b := range base {
		baseBy[b.key()] = b
		if b.NsPerOp <= 0 {
			rep.badRecords = append(rep.badRecords, b.key())
		}
	}
	seen := make(map[key]bool, len(cur))
	for _, c := range cur {
		k := c.key()
		seen[k] = true
		if c.NsPerOp <= 0 {
			rep.badRecords = append(rep.badRecords, k)
		}
		if c.AllocsPerOp != 0 && !c.serving() {
			rep.allocViolers = append(rep.allocViolers, k)
		}
		b, ok := baseBy[k]
		if !ok {
			rep.curOnly = append(rep.curOnly, k)
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > 0 {
			rep.pairs = append(rep.pairs, pair{key: k, ratio: c.NsPerOp / b.NsPerOp})
		} else {
			rep.dropped = append(rep.dropped, k)
		}
	}
	for k := range baseBy {
		if !seen[k] {
			rep.baseOnly = append(rep.baseOnly, k)
		}
	}
	sortKeys(rep.allocViolers)
	sortKeys(rep.baseOnly)
	sortKeys(rep.curOnly)
	sortKeys(rep.badRecords)
	sortKeys(rep.dropped)
	sort.Slice(rep.pairs, func(i, j int) bool { return rep.pairs[i].ratio > rep.pairs[j].ratio })

	if len(rep.pairs) > 0 {
		logSum := 0.0
		for _, p := range rep.pairs {
			logSum += math.Log(p.ratio)
		}
		rep.geomean = math.Exp(logSum / float64(len(rep.pairs)))
	}
	return rep
}

func sortKeys(ks []key) {
	sort.Slice(ks, func(i, j int) bool { return ks[i].String() < ks[j].String() })
}

func (r *report) print(w io.Writer) {
	fmt.Fprintf(w, "benchdiff: %d paired records, %d dropped, geomean ns/op ratio %.3f (tolerance %.2f)\n",
		len(r.pairs), len(r.dropped), r.geomean, r.tolerance)
	show := len(r.pairs)
	if show > 5 {
		show = 5
	}
	for _, p := range r.pairs[:show] {
		fmt.Fprintf(w, "  %-55s %.3fx\n", p.key, p.ratio)
	}
	if len(r.pairs) > show {
		fmt.Fprintf(w, "  ... and %d more\n", len(r.pairs)-show)
	}
	for _, k := range r.baseOnly {
		fmt.Fprintf(w, "  warning: baseline-only record %s (not measured now)\n", k)
	}
	for _, k := range r.curOnly {
		fmt.Fprintf(w, "  warning: new record %s (no baseline; add it on the next baseline refresh)\n", k)
	}
	for _, k := range r.dropped {
		fmt.Fprintf(w, "  dropped pair %s (non-positive ns_per_op on one side)\n", k)
	}
	switch {
	case len(r.badRecords) > 0:
		fmt.Fprintf(w, "FAIL: %d record(s) carry non-positive ns_per_op (corrupted or zeroed measurement):\n",
			len(r.badRecords))
		for _, k := range r.badRecords {
			fmt.Fprintf(w, "  %s\n", k)
		}
	case len(r.pairs) == 0:
		fmt.Fprintln(w, "FAIL: no records paired up — baseline and current runs must use the same scale/K/nrhs sweep")
	case len(r.allocViolers) > 0:
		fmt.Fprintf(w, "FAIL: %d record(s) allocate in steady state (contract is 0 allocs/op):\n", len(r.allocViolers))
		for _, k := range r.allocViolers {
			fmt.Fprintf(w, "  %s\n", k)
		}
	case r.geomean > r.tolerance:
		fmt.Fprintf(w, "FAIL: geomean slowdown %.3f exceeds tolerance %.2f\n", r.geomean, r.tolerance)
	default:
		fmt.Fprintln(w, "OK: no benchmark regression")
	}
}
