package main

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func rec(method string, k, nrhs int, ns float64, allocs int64) record {
	return record{
		Method: method, Matrix: "powerlaw", Seed: 1, K: k, NRHS: nrhs,
		Schedule: "fused", Rows: 1280, NsPerOp: ns, AllocsPerOp: allocs,
	}
}

func TestDiffRefusesCrossScalePairing(t *testing.T) {
	big := rec("s2D", 4, 1, 8000, 0)
	big.Rows = 6400
	small := rec("s2D", 4, 1, 1000, 0)
	rep := diff([]record{big}, []record{small}, 1.25)
	if len(rep.pairs) != 0 {
		t.Fatal("records at different scales must not pair")
	}
	if rep.ok() {
		t.Fatal("cross-scale comparison must fail, not pass vacuously")
	}
}

func TestDiffPassesWithinTolerance(t *testing.T) {
	base := []record{rec("s2D", 4, 1, 1000, 0), rec("s2D", 4, 8, 4000, 0)}
	cur := []record{rec("s2D", 4, 1, 1100, 0), rec("s2D", 4, 8, 4100, 0)}
	rep := diff(base, cur, 1.25)
	if !rep.ok() {
		t.Fatalf("should pass: %+v", rep)
	}
	want := math.Sqrt(1.1 * (4100.0 / 4000.0))
	if math.Abs(rep.geomean-want) > 1e-12 {
		t.Fatalf("geomean = %v, want %v", rep.geomean, want)
	}
}

func TestDiffFailsOnSlowdown(t *testing.T) {
	base := []record{rec("s2D", 4, 1, 1000, 0)}
	cur := []record{rec("s2D", 4, 1, 1300, 0)}
	if rep := diff(base, cur, 1.25); rep.ok() {
		t.Fatal("1.3x slowdown must fail at 1.25 tolerance")
	}
	if rep := diff(base, cur, 1.35); !rep.ok() {
		t.Fatal("1.3x slowdown must pass at 1.35 tolerance")
	}
}

func TestDiffFailsOnAllocs(t *testing.T) {
	base := []record{rec("s2D", 4, 1, 1000, 0)}
	cur := []record{rec("s2D", 4, 1, 500, 1)} // faster but allocating
	rep := diff(base, cur, 1.25)
	if rep.ok() {
		t.Fatal("allocations must fail the gate regardless of speed")
	}
	if len(rep.allocViolers) != 1 {
		t.Fatalf("allocViolers = %v", rep.allocViolers)
	}
}

func TestDiffFailsWhenNothingPairs(t *testing.T) {
	base := []record{rec("s2D", 4, 1, 1000, 0)}
	cur := []record{rec("s2D", 16, 1, 1000, 0)} // different K: no pairing
	rep := diff(base, cur, 1.25)
	if rep.ok() {
		t.Fatal("a vacuous comparison must fail, not pass")
	}
	if len(rep.baseOnly) != 1 || len(rep.curOnly) != 1 {
		t.Fatalf("baseOnly=%v curOnly=%v", rep.baseOnly, rep.curOnly)
	}
}

func TestDiffLegacyBaselineNRHSZero(t *testing.T) {
	// Baselines written before the nrhs field existed decode as NRHS=0
	// and must pair with current nrhs=1 records.
	old := rec("s2D", 4, 0, 1000, 0)
	cur := []record{rec("s2D", 4, 1, 1000, 0)}
	rep := diff([]record{old}, cur, 1.25)
	if !rep.ok() || len(rep.pairs) != 1 {
		t.Fatalf("legacy baseline should pair: %+v", rep)
	}
}

func serveRec(method string, k, conc int, ns float64) record {
	return record{
		Kind: "serve", Method: method, Matrix: "powerlaw", Seed: 1, K: k,
		Concurrency: conc, Schedule: "fused", Rows: 1280, NsPerOp: ns,
		AllocsPerOp: 64, // serving path allocates per request by design
	}
}

func TestDiffPairsServeRecordsByConcurrency(t *testing.T) {
	base := []record{serveRec("s2D", 4, 8, 1000), serveRec("s2D", 4, 32, 800)}
	cur := []record{serveRec("s2D", 4, 8, 1050), serveRec("s2D", 4, 32, 820)}
	rep := diff(base, cur, 1.25)
	if !rep.ok() || len(rep.pairs) != 2 {
		t.Fatalf("serve records should pair per concurrency: %+v", rep)
	}
	if len(rep.allocViolers) != 0 {
		t.Fatalf("serve records must be exempt from the alloc gate: %v", rep.allocViolers)
	}
}

func TestDiffServeNeverPairsWithKernel(t *testing.T) {
	// A kernel record and a serve record with otherwise identical fields
	// measure different things and must not pair.
	base := []record{rec("s2D", 4, 1, 1000, 0)}
	cur := []record{serveRec("s2D", 4, 0, 1000)}
	rep := diff(base, cur, 1.25)
	if len(rep.pairs) != 0 {
		t.Fatal("kernel and serve records paired")
	}
}

func TestDiffServeThroughputRegressionFails(t *testing.T) {
	// RPS halves → ns_per_op doubles → the gate trips.
	base := []record{serveRec("s2D", 4, 32, 1000)}
	cur := []record{serveRec("s2D", 4, 32, 2000)}
	if rep := diff(base, cur, 1.25); rep.ok() {
		t.Fatal("a 2x serving slowdown must fail")
	}
}

func TestReportPrint(t *testing.T) {
	base := []record{rec("s2D", 4, 1, 1000, 0)}
	cur := []record{rec("s2D", 4, 1, 2000, 0)}
	rep := diff(base, cur, 1.25)
	var buf bytes.Buffer
	rep.print(&buf)
	out := buf.String()
	if !strings.Contains(out, "FAIL: geomean slowdown") {
		t.Fatalf("unexpected report:\n%s", out)
	}
}

func TestDiffFailsOnNonPositiveNsPerOp(t *testing.T) {
	// A zeroed current record must fail the gate loudly, not silently
	// shrink its coverage.
	base := []record{rec("s2D", 4, 1, 1000, 0), rec("s2D", 16, 1, 1000, 0)}
	cur := []record{rec("s2D", 4, 1, 1100, 0), rec("s2D", 16, 1, 0, 0)}
	rep := diff(base, cur, 1.25)
	if rep.ok() {
		t.Fatal("a zeroed ns_per_op record must fail the gate")
	}
	if len(rep.badRecords) != 1 {
		t.Fatalf("badRecords = %v, want exactly the zeroed record", rep.badRecords)
	}
	if len(rep.dropped) != 1 {
		t.Fatalf("dropped = %v, want the unpaired key reported", rep.dropped)
	}
	var buf bytes.Buffer
	rep.print(&buf)
	out := buf.String()
	if !strings.Contains(out, "1 dropped") || !strings.Contains(out, "non-positive ns_per_op") {
		t.Fatalf("report must surface dropped pairs and the bad record:\n%s", out)
	}
}

func TestDiffFailsOnCorruptBaselineRecord(t *testing.T) {
	base := []record{rec("s2D", 4, 1, -5, 0)}
	cur := []record{rec("s2D", 4, 1, 1000, 0)}
	if rep := diff(base, cur, 1.25); rep.ok() {
		t.Fatal("a corrupt baseline record must fail the gate")
	}
}

func TestDiffKernelRecordsPairSeparately(t *testing.T) {
	// An autotuned record must never pair against a scalar baseline: a
	// pre-kernel baseline (Kernel "") pairs only with current scalar
	// records (also ""), and kernel-keyed records pair among themselves.
	scalar := rec("s2D", 4, 8, 1000, 0)
	auto := rec("s2D", 4, 8, 700, 0)
	auto.Kernel = "auto"
	rep := diff([]record{scalar}, []record{auto}, 1.25)
	if len(rep.pairs) != 0 {
		t.Fatal("autotuned record paired against a scalar baseline")
	}
	rep = diff([]record{scalar, auto}, []record{scalar, auto}, 1.25)
	if !rep.ok() || len(rep.pairs) != 2 {
		t.Fatalf("kernel-matched records should pair: %+v", rep)
	}
}

func TestDiffTransposeRecordsPairSeparately(t *testing.T) {
	// Forward and transpose measurements of the same kernel must never
	// pair with each other.
	fwd := rec("s2D", 4, 1, 1000, 0)
	tr := rec("s2D", 4, 1, 1200, 0)
	tr.Op = "transpose"
	rep := diff([]record{fwd}, []record{tr}, 1.25)
	if len(rep.pairs) != 0 {
		t.Fatal("forward baseline paired with a transpose record")
	}
	rep = diff([]record{fwd, tr}, []record{fwd, tr}, 1.25)
	if !rep.ok() || len(rep.pairs) != 2 {
		t.Fatalf("op-matched records should pair: %+v", rep)
	}
}
