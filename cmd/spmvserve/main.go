// Command spmvserve serves distributed SpMV over HTTP: a multi-tenant
// engine pool (internal/serve) fronts the compiled engines, coalescing
// concurrent /v1/multiply requests into batched SpMM flushes.
//
// Usage:
//
//	spmvserve -addr :8080                      # serve a generated matrix
//	spmvserve -mtx web.mtx,road.mtx            # serve MatrixMarket files
//	spmvserve -gen rmat_18 -scale 0.01         # serve a suite matrix
//	spmvserve -selftest -duration 2s           # in-process load sweep
//
// Endpoints:
//
//	POST /v1/multiply   {"matrix","method","k","x":[...]}  → {"y":[...]}
//	                    ("xs":[[...]] for multi-RHS, "transpose":true for
//	                    y = A'x; Content-Type application/x-spmv-frame
//	                    switches to the binary wire protocol)
//	POST /v1/solve      {"matrix","method","k","b":[...]}  → CG (square) or
//	                    LSQR/CGNR (rectangular; optional "solver" field)
//	GET  /v1/methods    registered methods + loaded matrices
//	GET  /v1/matrices   matrix resource: list, /{name} detail, DELETE
//	POST /v1/matrices   upload a MatrixMarket body (?name=...)
//	GET  /metrics       pool + per-engine + per-tenant serving metrics
//
// -tenants names a JSON keyfile ({"tenants":[{"name","key","weight",
// "max_queue"}]}); with it every data-plane request must carry
// `Authorization: Bearer <key>`, queue quotas apply per tenant, and the
// batch scheduler interleaves tenants weighted-fair. Without it the
// server runs a single open tenant (the pre-tenancy behavior).
//
// A quickstart lives in README.md's "Serving" section.
//
// -selftest starts the server on a loopback port, runs the closed-loop
// load generator against it (serve.LoadGen — the same sweep cmd/loadgen
// offers against a remote server), writes the throughput records as
// JSON, and exits non-zero if any request failed or the coalescing
// scheduler never batched; CI runs exactly this as its serving smoke
// test.
//
// -selftest sweeps -encodings (json,binary) and -nrhs widths, and fails
// if the binary frame does not at least halve the request bytes of the
// JSON encoding at nrhs >= 8. -selftest -tenantmix additionally runs the
// adversarial mixed-tenant scenario: a hot tenant with a tiny queue
// quota floods the engine while light tenants keep posting; the run
// fails unless the light tenant finishes error-free with bounded p99
// while the hot tenant's overflow lands as 429-driven retries.
//
// -selftest -chaos instead arms the pool's fault injector with the
// -faults schedule and runs the chaos sweep (serve.ChaosRun): 32
// concurrent clients under injected worker panics, payload corruption,
// and rebuild failures, asserting bit-identical responses from healthy
// engines, quarantine + breaker-gated recovery of the faulted one, a
// graceful drain that drops no in-flight request, and no goroutine
// leaks. The report (chaos-smoke.json shape) goes to -o or stdout; CI
// runs this as its chaos smoke test.
//
// In serving mode SIGTERM/SIGINT triggers a graceful drain: /readyz
// flips to 503, the listener stops accepting, in-flight requests finish
// (bounded by -draintimeout), then engines shut down.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/faultinject"
	"repro/internal/sparse"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	mtx := flag.String("mtx", "", "comma-separated MatrixMarket files to serve (name = file base)")
	genName := flag.String("gen", "", "suite matrix to generate and serve (see cmd/matgen), or 'powerlaw'")
	scale := flag.Float64("scale", 0.01, "generated matrix scale in (0,1]")
	seed := flag.Int64("seed", 1, "RNG seed for generation and partitioning")
	maxBatch := flag.Int("maxbatch", 8, "widest coalesced SpMM batch")
	maxWait := flag.Duration("maxwait", 200*time.Microsecond, "batching window for a partial batch")
	maxQueue := flag.Int("maxqueue", 1024, "per-engine queue depth bound (admission control)")
	maxEngines := flag.Int("maxengines", 8, "resident engine cap (idle LRU eviction above it)")
	forceKernel := flag.String("forcekernel", "",
		"pin one spmv kernel backend on every engine (scalar,reg,sorted,sortedreg); empty autotunes per engine")
	defMethod := flag.String("method", "s2d", "default partitioning method for requests that omit one")
	defK := flag.Int("k", 4, "default part count for requests that omit one")
	tenantsPath := flag.String("tenants", "",
		"tenant keyfile JSON ({\"tenants\":[{\"name\",\"key\",\"weight\",\"max_queue\"}]}); empty serves one open tenant")
	selftest := flag.Bool("selftest", false, "serve on a loopback port, run the load generator, validate, exit")
	duration := flag.Duration("duration", 2*time.Second, "selftest: duration per sweep point")
	concList := flag.String("conc", "1,8,32", "selftest: offered concurrency sweep")
	methodList := flag.String("methods", "s2d", "selftest: comma-separated methods to sweep")
	encList := flag.String("encodings", "json", "selftest: comma-separated wire encodings to sweep (json,binary)")
	nrhsList := flag.String("nrhs", "1", "selftest: comma-separated right-hand-side counts to sweep")
	tenantMix := flag.Bool("tenantmix", false,
		"selftest: also run the adversarial mixed-tenant scenario (hot tenant with a tiny quota vs light tenants)")
	out := flag.String("o", "", "selftest: write loadgen JSON records here (default stdout)")
	chaos := flag.Bool("chaos", false, "selftest: chaos mode — arm the fault injector and validate the fault-tolerance contract")
	faults := flag.String("faults", "worker.panic@400,build.fail@3,flush.nan@1500",
		"chaos: seeded fault schedule, comma-separated point@nth[xcount] terms")
	deadlineFlag := flag.Duration("deadline", 0, "server-side default request deadline (0 = none; requests may override via deadline_ms)")
	maxUpload := flag.Int64("maxupload", 1<<30, "largest accepted /v1/matrices upload body in bytes (413 above)")
	drainTimeout := flag.Duration("draintimeout", 30*time.Second, "serving mode: how long a SIGTERM drain waits for in-flight requests")
	logLevel := flag.String("loglevel", "info", "structured log level (debug, info, warn, error)")
	logFormat := flag.String("logformat", "text", "structured log format (text, json)")
	debugAddr := flag.String("debugaddr", "",
		"serve net/http/pprof on this separate address (empty disables the debug listener)")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatal(fmt.Errorf("bad -loglevel: %w", err))
	}
	logger, err := obs.NewLogger(os.Stderr, lvl, *logFormat)
	if err != nil {
		fatal(fmt.Errorf("bad -logformat: %w", err))
	}

	opt := serve.Options{
		MaxBatch:    *maxBatch,
		MaxWait:     *maxWait,
		MaxQueue:    *maxQueue,
		MaxEngines:  *maxEngines,
		Seed:        *seed,
		ForceKernel: *forceKernel,
	}
	if *tenantsPath != "" {
		reg, err := serve.LoadTenants(*tenantsPath)
		if err != nil {
			fatal(fmt.Errorf("bad -tenants: %w", err))
		}
		opt.Tenants = reg
	}
	if *tenantMix {
		if !*selftest {
			fatal(errors.New("-tenantmix requires -selftest"))
		}
		if *tenantsPath != "" {
			fatal(errors.New("-tenantmix provisions its own tenants; drop -tenants"))
		}
		// The adversarial fixture: the hot tenant's quota (2) is far below
		// its offered concurrency so its overflow must land as 429s, while
		// the light tenant keeps the default quota and 4x the weight.
		reg, err := serve.NewTenantRegistry(
			serve.TenantSpec{Name: "hot", Key: selftestHotKey, Weight: 1, MaxQueue: 2},
			serve.TenantSpec{Name: "light", Key: selftestLightKey, Weight: 4},
		)
		if err != nil {
			fatal(err)
		}
		opt.Tenants = reg
	}
	var inj *faultinject.Injector
	var events *obs.EventCounter
	if *chaos {
		if !*selftest {
			fatal(errors.New("-chaos requires -selftest"))
		}
		rules, err := faultinject.ParseSchedule(*faults)
		if err != nil {
			fatal(fmt.Errorf("bad -faults: %w", err))
		}
		inj = faultinject.New(rules...)
		opt.Injector = inj
		opt.PayloadChecks = true
		// Tight rebuild cooldown so quarantine → failed rebuild → backoff →
		// successful rebuild all fit inside the selftest window.
		opt.RebuildBackoff = 50 * time.Millisecond
		// Count structured log events so the chaos run can assert that
		// every quarantine and breaker trip emitted exactly one.
		events = obs.NewEventCounter(logger.Handler())
		logger = slog.New(events)
	}
	opt.Logger = logger
	pool := serve.NewPool(opt)
	defer pool.Close()

	defaultMatrix, err := loadMatrices(pool, *mtx, *genName, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	srv := serve.NewServer(pool)
	srv.DefaultMethod = *defMethod
	srv.DefaultK = *defK
	srv.DefaultDeadline = *deadlineFlag
	if *maxUpload > 0 {
		srv.MaxUploadBytes = *maxUpload
	}

	// The debug listener is deliberately a second socket: pprof exposes
	// heap contents and must never ride on the data-plane address.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("debug listener up", "event", "debug_listen", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				logger.Error("debug listener failed", "event", "debug_listen_failed", "err", err.Error())
			}
		}()
	}

	if *selftest {
		nrhs, err := cliutil.ParseIntList(*nrhsList)
		if err != nil {
			fatal(fmt.Errorf("bad -nrhs: %w", err))
		}
		cfg := selftestConfig{
			matrix:    defaultMatrix,
			methods:   cliutil.SplitList(*methodList),
			k:         *defK,
			conc:      *concList,
			encodings: cliutil.SplitList(*encList),
			nrhs:      nrhs,
			mix:       *tenantMix,
			duration:  *duration,
			seed:      *seed,
			out:       *out,
		}
		if *chaos {
			err = runChaos(srv, pool, inj, events, cfg)
		} else {
			err = runSelftest(srv, pool, cfg)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	for _, m := range pool.Matrices() {
		fmt.Fprintf(os.Stderr, "spmvserve: serving %s (%dx%d, %d nnz)\n", m.Name, m.Rows, m.Cols, m.NNZ)
	}
	fmt.Fprintf(os.Stderr, "spmvserve: listening on %s (default method %s, K=%d, maxbatch %d, maxwait %v)\n",
		*addr, *defMethod, *defK, *maxBatch, *maxWait)

	// Graceful drain: on SIGTERM/SIGINT flip /readyz to 503 (load
	// balancers stop routing), close the listener, and let in-flight
	// requests finish before the deferred pool.Close tears engines down.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Addr: *addr, Handler: srv}
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		srv.SetDraining(true)
		fmt.Fprintf(os.Stderr, "spmvserve: draining (no new connections; waiting up to %v for in-flight)\n", *drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		drained <- hs.Shutdown(sctx)
	}()
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if err := <-drained; err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	fmt.Fprintln(os.Stderr, "spmvserve: drained cleanly")
}

// loadMatrices registers the requested matrices and returns the name of
// the first one (the selftest target). With no -mtx and no -gen, a
// power-law matrix in the spmvbench style is generated so a bare
// `spmvserve` serves something immediately.
func loadMatrices(pool *serve.Pool, mtxList, genName string, scale float64, seed int64) (string, error) {
	first := ""
	for _, path := range cliutil.SplitList(mtxList) {
		f, err := os.Open(path)
		if err != nil {
			return "", err
		}
		a, err := sparse.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			return "", fmt.Errorf("%s: %w", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if err := pool.AddMatrix(name, a); err != nil {
			return "", err
		}
		if first == "" {
			first = name
		}
	}
	if genName == "" && first != "" {
		return first, nil
	}
	if genName == "" {
		genName = "powerlaw"
	}
	if scale <= 0 || scale > 1 {
		return "", fmt.Errorf("bad -scale %v: want a fraction in (0,1]", scale)
	}
	var a *sparse.CSR
	if genName == "powerlaw" {
		n := int(320000 * scale)
		if n < 1000 {
			n = 1000
		}
		a = gen.PowerLaw(gen.PowerLawConfig{
			Rows: n, Cols: n, NNZ: 10 * n, Beta: 0.5,
			DenseRows: 2, DenseMax: n / 16, Symmetric: true, Locality: 0.9,
		}, seed)
	} else {
		spec, ok := gen.ByName(genName)
		if !ok {
			return "", fmt.Errorf("unknown -gen matrix %q", genName)
		}
		a = spec.Generate(scale, seed)
	}
	if err := pool.AddMatrix(genName, a); err != nil {
		return "", err
	}
	if first == "" {
		first = genName
	}
	return first, nil
}

type selftestConfig struct {
	matrix    string
	methods   []string
	k         int
	conc      string
	encodings []string
	nrhs      []int
	mix       bool
	duration  time.Duration
	seed      int64
	out       string
}

// Bearer keys the -tenantmix fixture provisions. They gate a loopback
// selftest server only, so fixed values keep the run reproducible.
const (
	selftestHotKey   = "selftest-hot-key"
	selftestLightKey = "selftest-light-key"
)

// runSelftest serves on a loopback port, sweeps the load generator
// against it over real HTTP (methods x encodings x nrhs x concurrency),
// writes the records, and validates them: any transport/HTTP error, a
// mean batch width below 1, an engine without a kernel selection, or a
// binary frame that fails to halve the JSON request bytes at nrhs >= 8
// fails. With cfg.mix the adversarial mixed-tenant scenario runs on the
// same server afterwards and its QoS contract is validated too. The
// per-engine summary includes the kernel backends each resident engine
// runs.
func runSelftest(srv *serve.Server, pool *serve.Pool, cfg selftestConfig) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck // closed via Shutdown below
	defer hs.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()

	conc, err := cliutil.ParseIntList(cfg.conc)
	if err != nil {
		return fmt.Errorf("bad -conc: %w", err)
	}
	lcfg := serve.LoadGenConfig{
		BaseURL:     base,
		Matrix:      cfg.matrix,
		Methods:     cfg.methods,
		K:           cfg.k,
		Concurrency: conc,
		Encodings:   cfg.encodings,
		Duration:    cfg.duration,
		Seed:        cfg.seed,
	}
	if cfg.mix {
		// The -tenantmix registry keys the server, so the sweep itself
		// runs authenticated as the light tenant.
		lcfg.AuthKey, lcfg.Tenant = selftestLightKey, "light"
	}
	var recs []serve.Record
	for _, nrhs := range cfg.nrhs {
		lcfg.NRHS = nrhs
		r, err := serve.LoadGen(context.Background(), lcfg)
		if err != nil {
			return err
		}
		recs = append(recs, r...)
	}

	// First of two /metrics scrapes: the exposition must lint as
	// Prometheus text, and the second scrape (after the rest of the run)
	// must not move any counter backwards. In-process because CI's shell
	// cannot reach the ephemeral loopback port.
	prom1, err := scrapeProm(base)
	if err != nil {
		return err
	}

	var mixRecs []serve.Record
	if cfg.mix {
		mixRecs, err = serve.MixedLoad(context.Background(), serve.MixedLoadConfig{
			BaseURL:  base,
			Matrix:   cfg.matrix,
			Method:   cfg.methods[0],
			K:        cfg.k,
			HotKey:   selftestHotKey,
			LightKey: selftestLightKey,
			Duration: cfg.duration,
			Seed:     cfg.seed,
		})
		if err != nil {
			return err
		}
	}

	w := os.Stdout
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(append(append([]serve.Record{}, recs...), mixRecs...)); err != nil {
		return err
	}

	failed := false
	jsonReqBytes := map[string]int{} // method/nrhs -> JSON request size
	for _, r := range recs {
		status := "ok"
		switch {
		case r.Errors > 0 || r.Requests == 0:
			status = "FAIL (errors)"
			failed = true
		case r.MeanBatch < 1:
			status = "FAIL (no batching)"
			failed = true
		}
		if r.Encoding == serve.EncodingJSON {
			jsonReqBytes[fmt.Sprintf("%s/%d", r.Method, r.NRHS)] = r.ReqBytes
		}
		fmt.Fprintf(os.Stderr,
			"selftest %-8s enc=%-6s nrhs=%-2d conc=%-3d %6d req %5.0f req/s batch %.2f p50 %.2fms p99 %.2fms %6dB  %s\n",
			r.Method, r.Encoding, r.NRHS, r.Concurrency, r.Requests, r.RPS,
			r.MeanBatch, r.P50Ms, r.P99Ms, r.ReqBytes, status)
	}
	// Stage-latency table: JSON sweep points sample the server's own
	// timing breakdown, so the records carry per-stage percentiles. At
	// concurrency 1 the closed loop admits each request to an idle
	// runner, so queue time must not dominate — a queue p99 above the
	// flush p99 there means the stage attribution regressed.
	for _, r := range recs {
		if len(r.StageP99Ms) == 0 {
			continue
		}
		var b strings.Builder
		for _, st := range []string{
			serve.StageDecode, serve.StageAdmission, serve.StageQueue,
			serve.StageAssemble, serve.StageFlush, serve.StageEncode,
		} {
			if p99, ok := r.StageP99Ms[st]; ok {
				fmt.Fprintf(&b, "  %s %.3f/%.3f", st, r.StageP50Ms[st], p99)
			}
		}
		fmt.Fprintf(os.Stderr, "selftest stages %-8s nrhs=%-2d conc=%-3d p50/p99 ms:%s\n",
			r.Method, r.NRHS, r.Concurrency, b.String())
		if r.Concurrency == 1 && r.StageP99Ms[serve.StageQueue] > r.StageP99Ms[serve.StageFlush] {
			fmt.Fprintf(os.Stderr,
				"selftest FAIL: queue p99 %.3fms exceeds flush p99 %.3fms at concurrency 1 (%s nrhs=%d)\n",
				r.StageP99Ms[serve.StageQueue], r.StageP99Ms[serve.StageFlush], r.Method, r.NRHS)
			failed = true
		}
	}
	// The wire-protocol acceptance: at nrhs >= 8 the binary frame must
	// carry at most half the bytes the JSON encoding needs for the same
	// request.
	for _, r := range recs {
		if r.Encoding != serve.EncodingBinary || r.NRHS < 8 {
			continue
		}
		jb, ok := jsonReqBytes[fmt.Sprintf("%s/%d", r.Method, r.NRHS)]
		if ok && 2*r.ReqBytes > jb {
			fmt.Fprintf(os.Stderr, "selftest FAIL: binary request %dB vs JSON %dB at %s nrhs=%d (want <= half)\n",
				r.ReqBytes, jb, r.Method, r.NRHS)
			failed = true
		}
	}
	if err := validateMix(mixRecs, &failed); err != nil {
		return err
	}
	for _, em := range pool.MetricsSnapshot().Engines {
		status := "ok"
		if em.Kernel == "" {
			status = "FAIL (no kernel selection)"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "selftest engine %s schedule=%s kernel=[%s]  %s\n",
			em.EngineKey, em.Schedule, em.Kernel, status)
	}
	prom2, err := scrapeProm(base)
	if err != nil {
		return err
	}
	if err := obs.LintMonotonic(prom1, prom2); err != nil {
		return fmt.Errorf("/metrics between scrapes: %w", err)
	}
	fmt.Fprintf(os.Stderr, "selftest /metrics: %d series, exposition lints, counters monotonic across scrapes\n", len(prom2))
	if failed {
		return fmt.Errorf("selftest failed (see records above)")
	}
	fmt.Fprintln(os.Stderr, "selftest ok")
	return nil
}

// scrapeProm GETs /metrics asking for the Prometheus text exposition
// and lints it, returning the parsed series values keyed by series ID.
func scrapeProm(base string) (map[string]float64, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		return nil, fmt.Errorf("GET /metrics (Accept: text/plain): Content-Type %q, want %q", ct, obs.PromContentType)
	}
	series, err := obs.LintPrometheus(string(body))
	if err != nil {
		return nil, fmt.Errorf("/metrics exposition: %w", err)
	}
	return series, nil
}

// validateMix checks the mixed-tenant QoS contract: the light tenant
// finished error-free with bounded p99 while the hot tenant's overflow
// became retried 429s rather than light-tenant latency.
func validateMix(mixRecs []serve.Record, failed *bool) error {
	if len(mixRecs) == 0 {
		return nil
	}
	byTenant := map[string]serve.Record{}
	for _, r := range mixRecs {
		byTenant[r.Tenant] = r
		fmt.Fprintf(os.Stderr,
			"selftest mix %-5s conc=%-3d %6d req %4d retries %3d errors p50 %.2fms p99 %.2fms\n",
			r.Tenant, r.Concurrency, r.Requests, r.Retries, r.Errors, r.P50Ms, r.P99Ms)
	}
	hot, light := byTenant["hot"], byTenant["light"]
	const lightP99BoundMs = 250 // generous: loopback batches flush in microseconds
	switch {
	case light.Requests == 0 || light.Errors > 0:
		fmt.Fprintf(os.Stderr, "selftest FAIL: light tenant saw errors (%d req, %d errors)\n",
			light.Requests, light.Errors)
		*failed = true
	case light.P99Ms > lightP99BoundMs:
		fmt.Fprintf(os.Stderr, "selftest FAIL: light tenant p99 %.2fms exceeds %dms under the hot tenant's flood\n",
			light.P99Ms, lightP99BoundMs)
		*failed = true
	case hot.Retries == 0:
		fmt.Fprintln(os.Stderr, "selftest FAIL: hot tenant was never shed (quota 2 at conc 32 must 429)")
		*failed = true
	case hot.Errors > 0:
		fmt.Fprintf(os.Stderr, "selftest FAIL: hot tenant saw hard errors (%d); overflow must shed as 429, not fail\n",
			hot.Errors)
		*failed = true
	}
	return nil
}

// runChaos serves on a loopback port with the fault injector armed and
// runs the chaos acceptance: a 32-client sweep under injected worker
// panics and rebuild failures (serve.ChaosRun), then a drain check that
// shuts the HTTP server down with solve requests in flight
// (serve.DrainCheck), then a goroutine-leak check after the pool closes.
// The /readyz contract is probed at the drain boundary. The report is
// written as JSON before validation so a failing run still leaves its
// evidence behind. events counts the structured log records the pool
// emitted; the run fails unless every quarantine and breaker trip
// logged exactly one event.
func runChaos(srv *serve.Server, pool *serve.Pool, inj *faultinject.Injector, events *obs.EventCounter, cfg selftestConfig) error {
	gBefore := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck // closed via Shutdown below

	methods := cfg.methods
	if len(methods) < 2 {
		// Chaos wants one engine to fault while another stays healthy.
		methods = []string{"s2d", "2d"}
	}
	// A per-client idle connection each: the default per-host idle cap (2)
	// churns connections under 32 concurrent posters, and a stale reused
	// connection surfaces as a spurious transport EOF on a POST.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 64,
	}}
	ctx := context.Background()
	ccfg := serve.ChaosConfig{
		BaseURL:  "http://" + ln.Addr().String(),
		Client:   client,
		Matrix:   cfg.matrix,
		Methods:  methods,
		K:        cfg.k,
		Clients:  32,
		Duration: cfg.duration,
		Seed:     cfg.seed,
		Injector: inj,
	}

	rep, err := serve.ChaosRun(ctx, ccfg)
	if err != nil {
		hs.Shutdown(context.Background()) //nolint:errcheck
		return err
	}

	// Drain with requests in flight. The shutdown closure is the real
	// SIGTERM path: flip draining, confirm /readyz sheds while /healthz
	// stays live, then Shutdown and wait for in-flight work.
	drainErr := serve.DrainCheck(ctx, ccfg, rep, 16, func() error {
		srv.SetDraining(true)
		if err := expectStatus(client, ccfg.BaseURL+"/readyz", http.StatusServiceUnavailable); err != nil {
			return err
		}
		if err := expectStatus(client, ccfg.BaseURL+"/healthz", http.StatusOK); err != nil {
			return err
		}
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(sctx)
	})

	// Final pool snapshot before Close, for the log-event contract: the
	// counts must match what actually happened, including anything after
	// ChaosRun's own mid-run snapshot.
	finalPM := pool.MetricsSnapshot()
	trips := 0
	for _, b := range finalPM.Breakers {
		trips += int(b.Trips)
	}

	// Everything is down: engines must be gone too before counting.
	pool.Close()
	client.CloseIdleConnections()
	rep.GoroutinesBefore = gBefore
	for wait := time.Now().Add(2 * time.Second); ; {
		rep.GoroutinesAfter = runtime.NumGoroutine()
		if rep.GoroutinesAfter <= gBefore+2 || !time.Now().Before(wait) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	w := os.Stdout
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr,
		"chaos: %d ok, %d retries, %d mismatches; panics %d, rebuild failures %d, quarantines %d, recoveries %d; drain %d/%d in %.2fs; goroutines %d→%d\n",
		rep.Requests, rep.Retries, rep.Mismatches,
		rep.WorkerPanics, rep.RebuildFailures, rep.Quarantines, rep.Recoveries,
		rep.DrainInFlight, rep.DrainCompleted, rep.DrainSec,
		rep.GoroutinesBefore, rep.GoroutinesAfter)
	if drainErr != nil {
		return drainErr
	}
	if err := rep.Validate(5 * time.Second); err != nil {
		return err
	}
	if rep.GoroutinesAfter > gBefore+2 {
		return fmt.Errorf("chaos: goroutine leak: %d before, %d after drain+close", gBefore, rep.GoroutinesAfter)
	}
	// Structured-logging contract: state transitions log exactly once.
	// A missing event means an unobservable quarantine; an extra one
	// means a transition fired twice.
	fmt.Fprintf(os.Stderr, "chaos: log events quarantine=%d breaker_open=%d breaker_closed=%d (pool: quarantines %d, trips %d)\n",
		events.Count("quarantine"), events.Count("breaker_open"), events.Count("breaker_closed"),
		finalPM.Quarantines, trips)
	if got := events.Count("quarantine"); got != int(finalPM.Quarantines) {
		return fmt.Errorf("chaos: %d quarantine log events, want %d (one per pool quarantine)", got, finalPM.Quarantines)
	}
	if got := events.Count("breaker_open"); got != trips {
		return fmt.Errorf("chaos: %d breaker_open log events, want %d (one per breaker trip)", got, trips)
	}
	fmt.Fprintln(os.Stderr, "chaos selftest ok")
	return nil
}

// expectStatus GETs url and demands the given status code.
func expectStatus(client *http.Client, url string, want int) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("%s: HTTP %d, want %d", url, resp.StatusCode, want)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spmvserve: %v\n", err)
	os.Exit(1)
}
