// Command spmvserve serves distributed SpMV over HTTP: a multi-tenant
// engine pool (internal/serve) fronts the compiled engines, coalescing
// concurrent /v1/multiply requests into batched SpMM flushes.
//
// Usage:
//
//	spmvserve -addr :8080                      # serve a generated matrix
//	spmvserve -mtx web.mtx,road.mtx            # serve MatrixMarket files
//	spmvserve -gen rmat_18 -scale 0.01         # serve a suite matrix
//	spmvserve -selftest -duration 2s           # in-process load sweep
//
// Endpoints:
//
//	POST /v1/multiply   {"matrix","method","k","x":[...]}  → {"y":[...]}
//	POST /v1/solve      {"matrix","method","k","b":[...]}  → CG (square) or
//	                    LSQR/CGNR (rectangular; optional "solver" field)
//	GET  /v1/methods    registered methods + loaded matrices
//	POST /v1/matrices   upload a MatrixMarket body (?name=...)
//	GET  /metrics       pool + per-engine serving metrics
//
// A quickstart lives in README.md's "Serving" section.
//
// -selftest starts the server on a loopback port, runs the closed-loop
// load generator against it (serve.LoadGen — the same sweep cmd/loadgen
// offers against a remote server), writes the throughput records as
// JSON, and exits non-zero if any request failed or the coalescing
// scheduler never batched; CI runs exactly this as its serving smoke
// test.
//
// -selftest -chaos instead arms the pool's fault injector with the
// -faults schedule and runs the chaos sweep (serve.ChaosRun): 32
// concurrent clients under injected worker panics, payload corruption,
// and rebuild failures, asserting bit-identical responses from healthy
// engines, quarantine + breaker-gated recovery of the faulted one, a
// graceful drain that drops no in-flight request, and no goroutine
// leaks. The report (chaos-smoke.json shape) goes to -o or stdout; CI
// runs this as its chaos smoke test.
//
// In serving mode SIGTERM/SIGINT triggers a graceful drain: /readyz
// flips to 503, the listener stops accepting, in-flight requests finish
// (bounded by -draintimeout), then engines shut down.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/serve/faultinject"
	"repro/internal/sparse"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	mtx := flag.String("mtx", "", "comma-separated MatrixMarket files to serve (name = file base)")
	genName := flag.String("gen", "", "suite matrix to generate and serve (see cmd/matgen), or 'powerlaw'")
	scale := flag.Float64("scale", 0.01, "generated matrix scale in (0,1]")
	seed := flag.Int64("seed", 1, "RNG seed for generation and partitioning")
	maxBatch := flag.Int("maxbatch", 8, "widest coalesced SpMM batch")
	maxWait := flag.Duration("maxwait", 200*time.Microsecond, "batching window for a partial batch")
	maxQueue := flag.Int("maxqueue", 1024, "per-engine queue depth bound (admission control)")
	maxEngines := flag.Int("maxengines", 8, "resident engine cap (idle LRU eviction above it)")
	forceKernel := flag.String("forcekernel", "",
		"pin one spmv kernel backend on every engine (scalar,reg,sorted,sortedreg); empty autotunes per engine")
	defMethod := flag.String("method", "s2d", "default partitioning method for requests that omit one")
	defK := flag.Int("k", 4, "default part count for requests that omit one")
	selftest := flag.Bool("selftest", false, "serve on a loopback port, run the load generator, validate, exit")
	duration := flag.Duration("duration", 2*time.Second, "selftest: duration per sweep point")
	concList := flag.String("conc", "1,8,32", "selftest: offered concurrency sweep")
	methodList := flag.String("methods", "s2d", "selftest: comma-separated methods to sweep")
	out := flag.String("o", "", "selftest: write loadgen JSON records here (default stdout)")
	chaos := flag.Bool("chaos", false, "selftest: chaos mode — arm the fault injector and validate the fault-tolerance contract")
	faults := flag.String("faults", "worker.panic@400,build.fail@3,flush.nan@1500",
		"chaos: seeded fault schedule, comma-separated point@nth[xcount] terms")
	deadlineFlag := flag.Duration("deadline", 0, "server-side default request deadline (0 = none; requests may override via deadline_ms)")
	maxUpload := flag.Int64("maxupload", 1<<30, "largest accepted /v1/matrices upload body in bytes (413 above)")
	drainTimeout := flag.Duration("draintimeout", 30*time.Second, "serving mode: how long a SIGTERM drain waits for in-flight requests")
	flag.Parse()

	opt := serve.Options{
		MaxBatch:    *maxBatch,
		MaxWait:     *maxWait,
		MaxQueue:    *maxQueue,
		MaxEngines:  *maxEngines,
		Seed:        *seed,
		ForceKernel: *forceKernel,
	}
	var inj *faultinject.Injector
	if *chaos {
		if !*selftest {
			fatal(errors.New("-chaos requires -selftest"))
		}
		rules, err := faultinject.ParseSchedule(*faults)
		if err != nil {
			fatal(fmt.Errorf("bad -faults: %w", err))
		}
		inj = faultinject.New(rules...)
		opt.Injector = inj
		opt.PayloadChecks = true
		// Tight rebuild cooldown so quarantine → failed rebuild → backoff →
		// successful rebuild all fit inside the selftest window.
		opt.RebuildBackoff = 50 * time.Millisecond
	}
	pool := serve.NewPool(opt)
	defer pool.Close()

	defaultMatrix, err := loadMatrices(pool, *mtx, *genName, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	srv := serve.NewServer(pool)
	srv.DefaultMethod = *defMethod
	srv.DefaultK = *defK
	srv.DefaultDeadline = *deadlineFlag
	if *maxUpload > 0 {
		srv.MaxUploadBytes = *maxUpload
	}

	if *selftest {
		cfg := selftestConfig{
			matrix:   defaultMatrix,
			methods:  cliutil.SplitList(*methodList),
			k:        *defK,
			conc:     *concList,
			duration: *duration,
			seed:     *seed,
			out:      *out,
		}
		if *chaos {
			err = runChaos(srv, pool, inj, cfg)
		} else {
			err = runSelftest(srv, pool, cfg)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	for _, m := range pool.Matrices() {
		fmt.Fprintf(os.Stderr, "spmvserve: serving %s (%dx%d, %d nnz)\n", m.Name, m.Rows, m.Cols, m.NNZ)
	}
	fmt.Fprintf(os.Stderr, "spmvserve: listening on %s (default method %s, K=%d, maxbatch %d, maxwait %v)\n",
		*addr, *defMethod, *defK, *maxBatch, *maxWait)

	// Graceful drain: on SIGTERM/SIGINT flip /readyz to 503 (load
	// balancers stop routing), close the listener, and let in-flight
	// requests finish before the deferred pool.Close tears engines down.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Addr: *addr, Handler: srv}
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		srv.SetDraining(true)
		fmt.Fprintf(os.Stderr, "spmvserve: draining (no new connections; waiting up to %v for in-flight)\n", *drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		drained <- hs.Shutdown(sctx)
	}()
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if err := <-drained; err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	fmt.Fprintln(os.Stderr, "spmvserve: drained cleanly")
}

// loadMatrices registers the requested matrices and returns the name of
// the first one (the selftest target). With no -mtx and no -gen, a
// power-law matrix in the spmvbench style is generated so a bare
// `spmvserve` serves something immediately.
func loadMatrices(pool *serve.Pool, mtxList, genName string, scale float64, seed int64) (string, error) {
	first := ""
	for _, path := range cliutil.SplitList(mtxList) {
		f, err := os.Open(path)
		if err != nil {
			return "", err
		}
		a, err := sparse.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			return "", fmt.Errorf("%s: %w", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if err := pool.AddMatrix(name, a); err != nil {
			return "", err
		}
		if first == "" {
			first = name
		}
	}
	if genName == "" && first != "" {
		return first, nil
	}
	if genName == "" {
		genName = "powerlaw"
	}
	if scale <= 0 || scale > 1 {
		return "", fmt.Errorf("bad -scale %v: want a fraction in (0,1]", scale)
	}
	var a *sparse.CSR
	if genName == "powerlaw" {
		n := int(320000 * scale)
		if n < 1000 {
			n = 1000
		}
		a = gen.PowerLaw(gen.PowerLawConfig{
			Rows: n, Cols: n, NNZ: 10 * n, Beta: 0.5,
			DenseRows: 2, DenseMax: n / 16, Symmetric: true, Locality: 0.9,
		}, seed)
	} else {
		spec, ok := gen.ByName(genName)
		if !ok {
			return "", fmt.Errorf("unknown -gen matrix %q", genName)
		}
		a = spec.Generate(scale, seed)
	}
	if err := pool.AddMatrix(genName, a); err != nil {
		return "", err
	}
	if first == "" {
		first = genName
	}
	return first, nil
}

type selftestConfig struct {
	matrix   string
	methods  []string
	k        int
	conc     string
	duration time.Duration
	seed     int64
	out      string
}

// runSelftest serves on a loopback port, sweeps the load generator
// against it over real HTTP, writes the records, and validates them:
// any transport/HTTP error, a mean batch width below 1, or an engine
// without a kernel selection fails. The per-engine summary includes the
// kernel backends each resident engine runs.
func runSelftest(srv *serve.Server, pool *serve.Pool, cfg selftestConfig) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck // closed via Shutdown below
	defer hs.Shutdown(context.Background())

	conc, err := cliutil.ParseIntList(cfg.conc)
	if err != nil {
		return fmt.Errorf("bad -conc: %w", err)
	}
	recs, err := serve.LoadGen(context.Background(), serve.LoadGenConfig{
		BaseURL:     "http://" + ln.Addr().String(),
		Matrix:      cfg.matrix,
		Methods:     cfg.methods,
		K:           cfg.k,
		Concurrency: conc,
		Duration:    cfg.duration,
		Seed:        cfg.seed,
	})
	if err != nil {
		return err
	}

	w := os.Stdout
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		return err
	}

	failed := false
	for _, r := range recs {
		status := "ok"
		switch {
		case r.Errors > 0 || r.Requests == 0:
			status = "FAIL (errors)"
			failed = true
		case r.MeanBatch < 1:
			status = "FAIL (no batching)"
			failed = true
		}
		fmt.Fprintf(os.Stderr,
			"selftest %-8s conc=%-3d %6d req %5.0f req/s batch %.2f p50 %.2fms p99 %.2fms  %s\n",
			r.Method, r.Concurrency, r.Requests, r.RPS, r.MeanBatch, r.P50Ms, r.P99Ms, status)
	}
	for _, em := range pool.MetricsSnapshot().Engines {
		status := "ok"
		if em.Kernel == "" {
			status = "FAIL (no kernel selection)"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "selftest engine %s schedule=%s kernel=[%s]  %s\n",
			em.EngineKey, em.Schedule, em.Kernel, status)
	}
	if failed {
		return fmt.Errorf("selftest failed (see records above)")
	}
	fmt.Fprintln(os.Stderr, "selftest ok")
	return nil
}

// runChaos serves on a loopback port with the fault injector armed and
// runs the chaos acceptance: a 32-client sweep under injected worker
// panics and rebuild failures (serve.ChaosRun), then a drain check that
// shuts the HTTP server down with solve requests in flight
// (serve.DrainCheck), then a goroutine-leak check after the pool closes.
// The /readyz contract is probed at the drain boundary. The report is
// written as JSON before validation so a failing run still leaves its
// evidence behind.
func runChaos(srv *serve.Server, pool *serve.Pool, inj *faultinject.Injector, cfg selftestConfig) error {
	gBefore := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck // closed via Shutdown below

	methods := cfg.methods
	if len(methods) < 2 {
		// Chaos wants one engine to fault while another stays healthy.
		methods = []string{"s2d", "2d"}
	}
	// A per-client idle connection each: the default per-host idle cap (2)
	// churns connections under 32 concurrent posters, and a stale reused
	// connection surfaces as a spurious transport EOF on a POST.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 64,
	}}
	ctx := context.Background()
	ccfg := serve.ChaosConfig{
		BaseURL:  "http://" + ln.Addr().String(),
		Client:   client,
		Matrix:   cfg.matrix,
		Methods:  methods,
		K:        cfg.k,
		Clients:  32,
		Duration: cfg.duration,
		Seed:     cfg.seed,
		Injector: inj,
	}

	rep, err := serve.ChaosRun(ctx, ccfg)
	if err != nil {
		hs.Shutdown(context.Background()) //nolint:errcheck
		return err
	}

	// Drain with requests in flight. The shutdown closure is the real
	// SIGTERM path: flip draining, confirm /readyz sheds while /healthz
	// stays live, then Shutdown and wait for in-flight work.
	drainErr := serve.DrainCheck(ctx, ccfg, rep, 16, func() error {
		srv.SetDraining(true)
		if err := expectStatus(client, ccfg.BaseURL+"/readyz", http.StatusServiceUnavailable); err != nil {
			return err
		}
		if err := expectStatus(client, ccfg.BaseURL+"/healthz", http.StatusOK); err != nil {
			return err
		}
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(sctx)
	})

	// Everything is down: engines must be gone too before counting.
	pool.Close()
	client.CloseIdleConnections()
	rep.GoroutinesBefore = gBefore
	for wait := time.Now().Add(2 * time.Second); ; {
		rep.GoroutinesAfter = runtime.NumGoroutine()
		if rep.GoroutinesAfter <= gBefore+2 || !time.Now().Before(wait) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	w := os.Stdout
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr,
		"chaos: %d ok, %d retries, %d mismatches; panics %d, rebuild failures %d, quarantines %d, recoveries %d; drain %d/%d in %.2fs; goroutines %d→%d\n",
		rep.Requests, rep.Retries, rep.Mismatches,
		rep.WorkerPanics, rep.RebuildFailures, rep.Quarantines, rep.Recoveries,
		rep.DrainInFlight, rep.DrainCompleted, rep.DrainSec,
		rep.GoroutinesBefore, rep.GoroutinesAfter)
	if drainErr != nil {
		return drainErr
	}
	if err := rep.Validate(5 * time.Second); err != nil {
		return err
	}
	if rep.GoroutinesAfter > gBefore+2 {
		return fmt.Errorf("chaos: goroutine leak: %d before, %d after drain+close", gBefore, rep.GoroutinesAfter)
	}
	fmt.Fprintln(os.Stderr, "chaos selftest ok")
	return nil
}

// expectStatus GETs url and demands the given status code.
func expectStatus(client *http.Client, url string, want int) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("%s: HTTP %d, want %d", url, resp.StatusCode, want)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spmvserve: %v\n", err)
	os.Exit(1)
}
