// Command spmvbench regenerates the paper's evaluation tables and figure.
//
// Usage:
//
//	spmvbench -table 2              # Table II at the default scale
//	spmvbench -table 5 -scale 0.05  # Table V on larger instances
//	spmvbench -figure 1             # Figure 1 ASCII rendering
//	spmvbench -all                  # everything
//	spmvbench -table 6 -k 64,256    # override the K list
//	spmvbench -full                 # paper-scale matrices (slow)
//	spmvbench -json > BENCH.json    # machine-readable engine benchmarks
//	spmvbench -json -methods all    # benchmark every registered method
//	spmvbench -json -nrhs 1,8,32    # batched SpMM sweep (MultiplyBlock)
//	spmvbench -json -transpose      # also sweep y <- A'x (MultiplyTranspose)
//	spmvbench -json -kernels auto   # autotuned kernel backends
//	spmvbench -nrhstable            # multi-RHS method comparison table
//
// Each -json record carries the method name, matrix, seed, K, nrhs, op
// ("" forward, "transpose" for A'x), and the kernel selector ("" for
// the scalar reference), so BENCH_*.json baselines from successive PRs
// are directly comparable (cmd/benchdiff consumes exactly these
// records).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/harness"
	"repro/internal/method"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (1-7)")
	figure := flag.Int("figure", 0, "figure number to regenerate (1)")
	ablation := flag.Bool("ablation", false, "run the design-choice ablation instead of a paper table")
	all := flag.Bool("all", false, "regenerate every table and figure")
	scale := flag.Float64("scale", 1.0/16, "matrix scale in (0,1]; 1.0 = paper size")
	full := flag.Bool("full", false, "shorthand for -scale 1.0 (slow)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	kList := flag.String("k", "", "comma-separated K override, e.g. 16,64,256")
	par := flag.Int("p", 0, "max concurrent experiment cells (default NumCPU)")
	jsonBench := flag.Bool("json", false, "benchmark steady-state Multiply per method and emit JSON results")
	methodList := flag.String("methods", "1d,2d,s2d,s2d-b",
		"comma-separated registry methods for -json, or 'all'")
	nrhsList := flag.String("nrhs", "",
		"comma-separated right-hand-side counts for -json and -nrhstable, e.g. 1,8,32")
	nrhsTable := flag.Bool("nrhstable", false,
		"render the multi-RHS (batched SpMM) method comparison table")
	transpose := flag.Bool("transpose", false,
		"with -json, additionally benchmark the transpose kernels (y <- A'x)")
	kernelSel := flag.String("kernels", "",
		"with -json, comma-separated kernel selectors to sweep: backend names "+
			"(scalar,reg,sorted,sortedreg,relaxed) and/or 'auto' (plan-time autotuner); "+
			"empty = scalar only")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	flag.Parse()

	cfg := harness.Config{Scale: *scale, Seed: *seed, Parallelism: *par}
	if *full {
		cfg.Scale = 1.0
	} else {
		// One pipeline for the whole run: -all then reuses matrices,
		// hypergraph models, and finished builds across tables. The cache
		// holds everything it computes for the process lifetime, so at
		// paper scale (-full) we leave it unset and let each table use a
		// private pipeline that becomes collectable when the table ends.
		cfg.Pipeline = method.NewPipeline()
	}
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		fatalUsage("bad -scale %v: want a fraction in (0, 1]", *scale)
	}
	cfg.Ks = parseIntList("-k", *kList)
	nrhs := parseIntList("-nrhs", *nrhsList)
	if *nrhsList != "" && !*jsonBench && !*nrhsTable && !*all {
		fatalUsage("-nrhs only applies to -json, -nrhstable, or -all")
	}
	if *transpose && !*jsonBench {
		fatalUsage("-transpose only applies to -json")
	}
	if *kernelSel != "" && !*jsonBench {
		fatalUsage("-kernels only applies to -json")
	}
	var kernels []string
	for _, s := range strings.Split(*kernelSel, ",") {
		if s = strings.TrimSpace(s); s != "" {
			kernels = append(kernels, s)
		}
	}

	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalUsage("bad -cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalUsage("-cpuprofile: %v", err)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	w := os.Stdout
	run := func(n int) {
		switch n {
		case 1:
			harness.Table1(w, cfg)
		case 2:
			harness.Table2(w, cfg)
		case 3:
			harness.Table3(w, cfg)
		case 4:
			harness.Table4(w, cfg)
		case 5:
			harness.Table5(w, cfg)
		case 6:
			harness.Table6(w, cfg)
		case 7:
			harness.Table7(w, cfg)
		default:
			fatalUsage("unknown table %d (tables 1-7; see also -nrhstable)", n)
		}
	}

	switch {
	case *jsonBench:
		methods := strings.Split(*methodList, ",")
		if *methodList == "all" {
			methods = method.Names()
		}
		for i := range methods {
			methods[i] = strings.TrimSpace(methods[i])
		}
		if err := runJSONBench(w, cfg, methods, nrhs, *transpose, kernels); err != nil {
			stopProfile()
			fmt.Fprintf(os.Stderr, "spmvbench: %v\n", err)
			os.Exit(1)
		}
	case *all:
		harness.Figure1(w)
		for n := 1; n <= 7; n++ {
			run(n)
		}
		harness.TableNRHS(w, cfg, nrhs)
		harness.Ablation(w, cfg)
	case *ablation:
		harness.Ablation(w, cfg)
	case *nrhsTable:
		harness.TableNRHS(w, cfg, nrhs)
	case *figure == 1:
		harness.Figure1(w)
	case *figure != 0:
		fatalUsage("unknown figure %d (only figure 1 exists)", *figure)
	case *table != 0:
		run(*table)
	default:
		flag.Usage()
		os.Exit(2)
	}
	stopProfile()
}

// parseIntList parses a comma-separated list of positive integers via
// the shared cliutil helper, exiting with a usage message (rather than
// a panic deeper in the harness) on malformed input. An empty value
// returns nil.
func parseIntList(flagName, value string) []int {
	out, err := cliutil.ParseIntList(value)
	if err != nil {
		fatalUsage("bad %s: %v (e.g. %s 4,16,64)", flagName, err, flagName)
	}
	return out
}

// fatalUsage prints an error plus the flag usage and exits 2.
func fatalUsage(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "spmvbench: "+format+"\n\n", args...)
	flag.Usage()
	os.Exit(2)
}
