package main

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/method"
	"repro/internal/spmv"
)

// benchRecord is one machine-readable engine measurement, emitted by
// `spmvbench -json` so successive PRs can track the perf trajectory in
// BENCH_*.json files. Method, matrix, seed, K, nrhs, and op identify
// the measurement; schedule names the engine variant the build ran on.
// Op is empty for the forward product and "transpose" for y ← Aᵀx
// records (-transpose), which reuse the forward plan's packets with the
// phases reversed — so the communication columns are shared. NsPerOp
// times one whole block multiply (nrhs=1: one Multiply); NsPerColumn =
// NsPerOp/nrhs is the per-RHS throughput figure. Packets and MaxMsgs
// are per multiply regardless of nrhs — the block path widens payloads,
// not the message count — so CommVolume (words moved per block
// multiply) is VolumeWords·nrhs. Kernel is the -kernels selector the
// record ran under — empty for the scalar reference, so baselines from
// PRs that predate kernel selection pair against scalar records — and
// KernelChoice is the backend "auto" resolved to for this nrhs
// (informational; benchdiff keys on Kernel only).
type benchRecord struct {
	Op           string `json:"op,omitempty"`
	Kernel       string `json:"kernel,omitempty"`
	KernelChoice string `json:"kernel_choice,omitempty"`

	Method      string  `json:"method"`
	Matrix      string  `json:"matrix"`
	Seed        int64   `json:"seed"`
	K           int     `json:"k"`
	NRHS        int     `json:"nrhs"`
	Schedule    string  `json:"schedule"`
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
	NNZ         int     `json:"nnz"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerColumn float64 `json:"ns_per_column"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Packets     int     `json:"packets_per_multiply"`
	MaxMsgs     int     `json:"max_msgs"`
	VolumeWords int     `json:"volume_words"`
	CommVolume  int     `json:"comm_volume"`
}

func scheduleOf(b method.Build) string {
	switch {
	case b.Routed():
		return "routed"
	case b.Dist.Fused:
		return "fused"
	default:
		return "twophase"
	}
}

// runJSONBench benchmarks steady-state Multiply (and, for nrhs > 1,
// MultiplyBlock) for every requested registry method at each (K, nrhs)
// and writes a JSON array to w; with transpose set it additionally
// benchmarks MultiplyTranspose / MultiplyTransposeBlock on the same
// engines, emitting op="transpose" records the benchdiff gate pairs
// separately from the forward ones. All builds share one pipeline, so
// common prerequisites are computed once across the sweep.
//
// kernels lists the -kernels selectors to sweep per engine: backend
// names install that backend for every width class, "auto" runs the
// plan-time autotuner (decisions memoized in the pipeline, so both
// K-sweep repeats and rebuilt engines reuse the first verdict). Empty
// means scalar only. Each selector reuses the same engine — selection
// swaps are cheap; plan compilation is not.
func runJSONBench(w io.Writer, cfg harness.Config, methods []string, nrhsList []int, transpose bool, kernels []string) error {
	ks := cfg.Ks
	if len(ks) == 0 {
		ks = []int{4, 16, 64}
	}
	if len(nrhsList) == 0 {
		nrhsList = []int{1}
	}
	if len(kernels) == 0 {
		kernels = []string{"scalar"}
	}
	n := int(320000 * cfg.Scale)
	if n < 1000 {
		n = 1000
	}
	const matrixName = "powerlaw"
	a := gen.PowerLaw(gen.PowerLawConfig{
		Rows: n, Cols: n, NNZ: 10 * n, Beta: 0.5,
		DenseRows: 2, DenseMax: n / 16, Symmetric: true, Locality: 0.9,
	}, cfg.Seed)
	maxNRHS := 1
	for _, nr := range nrhsList {
		if nr > maxNRHS {
			maxNRHS = nr
		}
	}
	X := make([]float64, a.Cols*maxNRHS)
	Y := make([]float64, a.Rows*maxNRHS)
	for i := range X {
		X[i] = float64(i%13) - 6
	}

	opt := method.Options{Seed: cfg.Seed, Pipeline: method.NewPipeline(), Ks: ks}
	var recs []benchRecord
	for _, k := range ks {
		for _, name := range methods {
			b, err := method.BuildByName(name, a, k, opt)
			if err != nil {
				return err
			}
			eng, err := spmv.New(b)
			if err != nil {
				return fmt.Errorf("%s K=%d: %w", name, k, err)
			}
			cs := eng.ScheduleStats()
			var kernelKey string
			var kernelRep spmv.KernelReport
			record := func(op string, nrhs int, res testing.BenchmarkResult) {
				choice := ""
				if kernelKey == "auto" {
					choice = kernelRep.For(nrhs)
				}
				recs = append(recs, benchRecord{
					Op:           op,
					Kernel:       kernelKey,
					KernelChoice: choice,

					Method:      b.Method,
					Matrix:      matrixName,
					Seed:        cfg.Seed,
					K:           k,
					NRHS:        nrhs,
					Schedule:    scheduleOf(b),
					Rows:        a.Rows,
					Cols:        a.Cols,
					NNZ:         a.NNZ(),
					NsPerOp:     float64(res.NsPerOp()),
					NsPerColumn: float64(res.NsPerOp()) / float64(nrhs),
					AllocsPerOp: res.AllocsPerOp(),
					BytesPerOp:  res.AllocedBytesPerOp(),
					Packets:     cs.TotalMsgs,
					MaxMsgs:     cs.MaxSendMsgs,
					VolumeWords: cs.TotalVolume,
					CommVolume:  cs.TotalVolume * nrhs,
				})
			}
			for _, sel := range kernels {
				tune := spmv.TuneConfig{}
				switch sel {
				case "auto":
					kernelKey = "auto"
					tune.Widths = nrhsList
					tune.Cache = opt.Pipeline.KernelCache(a, b.Method, k, cfg.Seed, 0)
				case "scalar":
					// The scalar reference keys as "" so baselines from PRs
					// that predate kernel selection pair against it.
					kernelKey = ""
					tune.Force = "scalar"
				default:
					kernelKey = sel
					tune.Force = sel
					tune.RelaxedFP = sel == "relaxed"
				}
				rep, err := eng.Autotune(tune)
				if err != nil {
					eng.Close()
					return fmt.Errorf("%s K=%d -kernels %s: %w", name, k, sel, err)
				}
				kernelRep = rep

				for _, nrhs := range nrhsList {
					var res testing.BenchmarkResult
					if nrhs == 1 {
						x, y := X[:a.Cols], Y[:a.Rows]
						res = testing.Benchmark(func(bm *testing.B) {
							bm.ReportAllocs()
							for i := 0; i < bm.N; i++ {
								eng.Multiply(x, y)
							}
						})
					} else {
						Xb, Yb := X[:a.Cols*nrhs], Y[:a.Rows*nrhs]
						eng.MultiplyBlock(Xb, Yb, nrhs) // size the block buffers
						res = testing.Benchmark(func(bm *testing.B) {
							bm.ReportAllocs()
							for i := 0; i < bm.N; i++ {
								eng.MultiplyBlock(Xb, Yb, nrhs)
							}
						})
					}
					record("", nrhs, res)
					if !transpose {
						continue
					}
					// Transpose sweep on the same engine: x lives in the row
					// space, y in the column space. The square bench matrix lets
					// the X/Y scratch serve both directions.
					if nrhs == 1 {
						x, y := X[:a.Rows], Y[:a.Cols]
						eng.MultiplyTranspose(x, y) // compile the transpose plan
						res = testing.Benchmark(func(bm *testing.B) {
							bm.ReportAllocs()
							for i := 0; i < bm.N; i++ {
								eng.MultiplyTranspose(x, y)
							}
						})
					} else {
						Xb, Yb := X[:a.Rows*nrhs], Y[:a.Cols*nrhs]
						eng.MultiplyTransposeBlock(Xb, Yb, nrhs)
						res = testing.Benchmark(func(bm *testing.B) {
							bm.ReportAllocs()
							for i := 0; i < bm.N; i++ {
								eng.MultiplyTransposeBlock(Xb, Yb, nrhs)
							}
						})
					}
					record("transpose", nrhs, res)
				}
			}
			eng.Close()
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}
