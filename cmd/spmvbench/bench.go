package main

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/spmv"
)

// benchRecord is one machine-readable engine measurement, emitted by
// `spmvbench -json` so successive PRs can track the perf trajectory in
// BENCH_*.json files.
type benchRecord struct {
	Schedule    string  `json:"schedule"`
	K           int     `json:"k"`
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
	NNZ         int     `json:"nnz"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Packets     int     `json:"packets_per_multiply"`
	VolumeWords int     `json:"volume_words"`
}

type multiplier interface {
	Multiply(x, y []float64)
	ScheduleStats() distrib.CommStats
	Close()
}

// runJSONBench benchmarks steady-state Multiply for every schedule at each
// K and writes a JSON array to w.
func runJSONBench(w io.Writer, cfg harness.Config) error {
	ks := cfg.Ks
	if len(ks) == 0 {
		ks = []int{4, 16, 64}
	}
	n := int(320000 * cfg.Scale)
	if n < 1000 {
		n = 1000
	}
	a := gen.PowerLaw(gen.PowerLawConfig{
		Rows: n, Cols: n, NNZ: 10 * n, Beta: 0.5,
		DenseRows: 2, DenseMax: n / 16, Symmetric: true, Locality: 0.9,
	}, cfg.Seed)
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i%13) - 6
	}

	var recs []benchRecord
	measure := func(schedule string, k int, eng multiplier) {
		defer eng.Close()
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.Multiply(x, y)
			}
		})
		cs := eng.ScheduleStats()
		recs = append(recs, benchRecord{
			Schedule:    schedule,
			K:           k,
			Rows:        a.Rows,
			Cols:        a.Cols,
			NNZ:         a.NNZ(),
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Packets:     cs.TotalMsgs,
			VolumeWords: cs.TotalVolume,
		})
	}

	for _, k := range ks {
		opt := baselines.Options{Seed: cfg.Seed}
		rows := baselines.RowwiseParts(a, k, opt)
		oneD := baselines.Rowwise1DFromParts(a, rows, k)
		s2d := core.Balanced(a, oneD.XPart, oneD.YPart, k, core.BalanceConfig{})

		fused, err := spmv.NewEngine(s2d)
		if err != nil {
			return fmt.Errorf("fused K=%d: %w", k, err)
		}
		measure("fused", k, fused)

		routed, err := spmv.NewRoutedEngine(s2d, core.NewMesh(k))
		if err != nil {
			return fmt.Errorf("routed K=%d: %w", k, err)
		}
		measure("routed", k, routed)

		twoPhase, err := spmv.NewEngine(baselines.FineGrain2D(a, k, opt))
		if err != nil {
			return fmt.Errorf("two-phase K=%d: %w", k, err)
		}
		measure("twophase", k, twoPhase)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}
