// Command s2dpart partitions a sparse matrix with any registered method
// and prints a quality report (load imbalance, communication volume,
// message counts, modelled speedup). It optionally verifies the partition
// by running the distributed SpMV engine against the serial reference.
//
// Usage:
//
//	s2dpart -matrix c-big -k 64 -method s2d
//	s2dpart -file m.mtx -k 16 -method 2d -verify
//	s2dpart -matrix rmat_20 -scale 0.01 -k 256 -method s2d-b
//	s2dpart -matrix boyd2 -k 64 -method all      # compare every method
//
// Methods come from the registry in internal/method; run with
// -list-methods (or pass a bogus -method) to see them.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/internal/distrib"
	"repro/internal/gen"
	"repro/internal/method"
	"repro/internal/model"
	"repro/internal/sparse"
	"repro/internal/spmv"
)

func main() {
	matrix := flag.String("matrix", "", "named suite matrix (see -list)")
	file := flag.String("file", "", "MatrixMarket file to partition")
	list := flag.Bool("list", false, "list the named suite matrices")
	listMethods := flag.Bool("list-methods", false, "list the registered partitioning methods")
	k := flag.Int("k", 16, "number of parts")
	methodName := flag.String("method", "s2d", "partitioning method, or 'all' to compare every registered method")
	scale := flag.Float64("scale", 1.0/64, "suite matrix scale (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "RNG seed")
	verify := flag.Bool("verify", false, "run the parallel engine against serial SpMV")
	viz := flag.Bool("viz", false, "print the K x K message-volume heatmap (small K)")
	flag.Parse()

	if *list {
		for _, s := range append(gen.SetA(), gen.SetB()...) {
			fmt.Printf("%-12s %10d x %-10d nnz %-10d %s\n", s.Name, s.PaperN, s.PaperN, s.PaperNNZ, s.App)
		}
		return
	}
	// Validate knobs up front: a bad -k or -scale used to surface as a
	// panic deep inside the partitioner instead of a usage error.
	if *k < 1 {
		fatalUsage("bad -k %d: want a part count >= 1", *k)
	}
	if *scale <= 0 || *scale > 1 {
		fatalUsage("bad -scale %v: want a fraction in (0, 1]", *scale)
	}
	if *listMethods {
		for _, info := range method.List() {
			fmt.Printf("%-10s %s\n", info.Name, info.Desc)
		}
		return
	}

	a, name, err := loadMatrix(*matrix, *file, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "s2dpart:", err)
		os.Exit(1)
	}
	st := a.ComputeStats()
	fmt.Printf("matrix %s: %d x %d, %d nonzeros (davg %.1f, dmax %d)\n",
		name, st.Rows, st.Cols, st.NNZ, st.DavgRow, st.DmaxRow)

	if *methodName == "all" {
		if *viz {
			fmt.Fprintln(os.Stderr, "s2dpart: -viz is ignored with -method all (pick one method for the heatmap)")
		}
		if err := compareAll(a, *k, *seed, *verify); err != nil {
			fmt.Fprintln(os.Stderr, "s2dpart:", err)
			os.Exit(1)
		}
		return
	}

	b, err := method.BuildByName(*methodName, a, *k, method.Options{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "s2dpart:", err)
		os.Exit(1)
	}

	cs := b.Comm()
	est := model.CrayXE6().Evaluate(b.Dist.PartLoads(), cs.Phases, a.NNZ())

	fmt.Printf("method %s, K=%d", b.Method, *k)
	if b.Mesh != nil {
		fmt.Printf(" (mesh %v)", *b.Mesh)
	}
	fmt.Println()
	fmt.Printf("  s2D property:       %v\n", b.Dist.IsS2D())
	fmt.Printf("  load imbalance:     %.1f%%\n", b.Dist.LoadImbalance()*100)
	fmt.Printf("  total volume:       %d words\n", cs.TotalVolume)
	fmt.Printf("  messages:           total %d, avg/proc %.1f, max/proc %d\n",
		cs.TotalMsgs, cs.AvgSendMsgs, cs.MaxSendMsgs)
	for i, ph := range cs.Phases {
		fmt.Printf("  phase %d:            vol %d, msgs %d, max-send %d\n",
			i+1, ph.TotalVolume, ph.TotalMsgs, ph.MaxSendMsgs)
	}
	fmt.Printf("  modelled speedup:   %.1f (compute %.3gs, comm %.3gs, serial %.3gs)\n",
		est.Speedup, est.ComputeTime, est.CommTime, est.SerialTime)

	if *verify {
		if err := verifyEngine(a, b); err != nil {
			fmt.Fprintln(os.Stderr, "s2dpart: VERIFY FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("  engine verification: OK (parallel == serial)")
	}
	if *viz {
		printHeatmap(b.Dist, *k)
	}
}

// compareAll builds every registered method on one shared pipeline and
// prints a comparison table. Shared prerequisites (the vector partition,
// the Algorithm 1 distribution) are computed once across the sweep.
func compareAll(a *sparse.CSR, k int, seed int64, verify bool) error {
	machine := model.CrayXE6()
	opt := method.Options{Seed: seed, Pipeline: method.NewPipeline()}
	fmt.Printf("all methods at K=%d:\n", k)
	fmt.Printf("  %-10s %8s %10s %8s %8s %9s %7s\n",
		"method", "LI", "volume", "avg-msg", "max-msg", "speedup", "verify")
	failed := 0
	for _, name := range method.Names() {
		b, err := method.BuildByName(name, a, k, opt)
		if err != nil {
			// A method can be inapplicable to this matrix (e.g. s2D-mgS
			// on rectangular input); report it and keep comparing.
			fmt.Printf("  %-10s (skipped: %v)\n", name, err)
			continue
		}
		cs := b.Comm()
		est := machine.Evaluate(b.Dist.PartLoads(), cs.Phases, a.NNZ())
		status := "-"
		if verify {
			if err := verifyEngine(a, b); err != nil {
				status = "FAIL"
				failed++
				fmt.Fprintf(os.Stderr, "s2dpart: %s verification: %v\n", name, err)
			} else {
				status = "ok"
			}
		}
		fmt.Printf("  %-10s %8.1f%% %10d %8.1f %8d %9.1f %7s\n",
			b.Method, b.Dist.LoadImbalance()*100, cs.TotalVolume,
			cs.AvgSendMsgs, cs.MaxSendMsgs, est.Speedup, status)
	}
	if failed > 0 {
		return fmt.Errorf("%d method(s) failed engine verification", failed)
	}
	return nil
}

// printHeatmap renders the pairwise message-volume matrix; brightness
// buckets are powers of four.
func printHeatmap(d *distrib.Distribution, k int) {
	if k > 64 {
		fmt.Println("  (heatmap suppressed for K > 64)")
		return
	}
	expand, fold := d.ExpandFold()
	vol := make([]int, k*k)
	for key, words := range expand.Vol {
		vol[key] += words
	}
	for key, words := range fold.Vol {
		vol[key] += words
	}
	shades := []byte(" .:*#@")
	fmt.Println("  message-volume heatmap (rows = sender, cols = receiver):")
	for from := 0; from < k; from++ {
		fmt.Print("   ")
		for to := 0; to < k; to++ {
			v := vol[from*k+to]
			s := 0
			for t := v; t > 0 && s < len(shades)-1; t /= 4 {
				s++
			}
			fmt.Printf("%c", shades[s])
		}
		fmt.Println()
	}
}

// fatalUsage prints an error plus the flag usage and exits 2.
func fatalUsage(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "s2dpart: "+format+"\n\n", args...)
	flag.Usage()
	os.Exit(2)
}

func loadMatrix(name, file string, scale float64, seed int64) (*sparse.CSR, string, error) {
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		a, err := sparse.ReadMatrixMarket(f)
		return a, file, err
	case name != "":
		spec, ok := gen.ByName(name)
		if !ok {
			return nil, "", fmt.Errorf("unknown matrix %q (try -list)", name)
		}
		return spec.Generate(scale, seed), name, nil
	default:
		return nil, "", fmt.Errorf("one of -matrix or -file is required")
	}
}

func verifyEngine(a *sparse.CSR, b method.Build) error {
	r := rand.New(rand.NewSource(7))
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = r.Float64()*2 - 1
	}
	want := make([]float64, a.Rows)
	a.MulVec(x, want)
	got := make([]float64, a.Rows)
	e, err := spmv.New(b)
	if err != nil {
		return err
	}
	defer e.Close()
	e.Multiply(x, got)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9*(1+math.Abs(want[i])) {
			return fmt.Errorf("y[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	return nil
}
