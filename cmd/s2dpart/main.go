// Command s2dpart partitions a sparse matrix with any of the implemented
// methods and prints a quality report (load imbalance, communication
// volume, message counts, modelled speedup). It optionally verifies the
// partition by running the distributed SpMV engine against the serial
// reference.
//
// Usage:
//
//	s2dpart -matrix c-big -k 64 -method s2d
//	s2dpart -file m.mtx -k 16 -method 2d -verify
//	s2dpart -matrix rmat_20 -scale 0.01 -k 256 -method s2d-b
//
// Methods: 1d, 1d-col, 2d, 2d-b, 1d-b, s2d, s2d-opt, s2d-b, s2d-mg.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/sparse"
	"repro/internal/spmv"
)

func main() {
	matrix := flag.String("matrix", "", "named suite matrix (see -list)")
	file := flag.String("file", "", "MatrixMarket file to partition")
	list := flag.Bool("list", false, "list the named suite matrices")
	k := flag.Int("k", 16, "number of parts")
	method := flag.String("method", "s2d", "partitioning method")
	scale := flag.Float64("scale", 1.0/64, "suite matrix scale (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "RNG seed")
	verify := flag.Bool("verify", false, "run the parallel engine against serial SpMV")
	viz := flag.Bool("viz", false, "print the K x K message-volume heatmap (small K)")
	flag.Parse()

	if *list {
		for _, s := range append(gen.SetA(), gen.SetB()...) {
			fmt.Printf("%-12s %10d x %-10d nnz %-10d %s\n", s.Name, s.PaperN, s.PaperN, s.PaperNNZ, s.App)
		}
		return
	}

	a, name, err := loadMatrix(*matrix, *file, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "s2dpart:", err)
		os.Exit(1)
	}
	st := a.ComputeStats()
	fmt.Printf("matrix %s: %d x %d, %d nonzeros (davg %.1f, dmax %d)\n",
		name, st.Rows, st.Cols, st.NNZ, st.DavgRow, st.DmaxRow)

	d, mesh, err := buildDistribution(a, *method, *k, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "s2dpart:", err)
		os.Exit(1)
	}

	var cs distrib.CommStats
	if mesh != nil {
		cs = core.S2DBComm(d, *mesh)
	} else {
		cs = d.Comm()
	}
	est := model.CrayXE6().Evaluate(d.PartLoads(), cs.Phases, a.NNZ())

	fmt.Printf("method %s, K=%d", *method, *k)
	if mesh != nil {
		fmt.Printf(" (mesh %v)", *mesh)
	}
	fmt.Println()
	fmt.Printf("  s2D property:       %v\n", d.IsS2D())
	fmt.Printf("  load imbalance:     %.1f%%\n", d.LoadImbalance()*100)
	fmt.Printf("  total volume:       %d words\n", cs.TotalVolume)
	fmt.Printf("  messages:           total %d, avg/proc %.1f, max/proc %d\n",
		cs.TotalMsgs, cs.AvgSendMsgs, cs.MaxSendMsgs)
	for i, ph := range cs.Phases {
		fmt.Printf("  phase %d:            vol %d, msgs %d, max-send %d\n",
			i+1, ph.TotalVolume, ph.TotalMsgs, ph.MaxSendMsgs)
	}
	fmt.Printf("  modelled speedup:   %.1f (compute %.3gs, comm %.3gs, serial %.3gs)\n",
		est.Speedup, est.ComputeTime, est.CommTime, est.SerialTime)

	if *verify {
		if err := verifyEngine(a, d, mesh); err != nil {
			fmt.Fprintln(os.Stderr, "s2dpart: VERIFY FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("  engine verification: OK (parallel == serial)")
	}
	if *viz {
		printHeatmap(d, *k)
	}
}

// printHeatmap renders the pairwise message-volume matrix; brightness
// buckets are powers of four.
func printHeatmap(d *distrib.Distribution, k int) {
	if k > 64 {
		fmt.Println("  (heatmap suppressed for K > 64)")
		return
	}
	expand, fold := d.ExpandFold()
	vol := make([]int, k*k)
	for key, words := range expand.Vol {
		vol[key] += words
	}
	for key, words := range fold.Vol {
		vol[key] += words
	}
	shades := []byte(" .:*#@")
	fmt.Println("  message-volume heatmap (rows = sender, cols = receiver):")
	for from := 0; from < k; from++ {
		fmt.Print("   ")
		for to := 0; to < k; to++ {
			v := vol[from*k+to]
			s := 0
			for t := v; t > 0 && s < len(shades)-1; t /= 4 {
				s++
			}
			fmt.Printf("%c", shades[s])
		}
		fmt.Println()
	}
}

func loadMatrix(name, file string, scale float64, seed int64) (*sparse.CSR, string, error) {
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		a, err := sparse.ReadMatrixMarket(f)
		return a, file, err
	case name != "":
		spec, ok := gen.ByName(name)
		if !ok {
			return nil, "", fmt.Errorf("unknown matrix %q (try -list)", name)
		}
		return spec.Generate(scale, seed), name, nil
	default:
		return nil, "", fmt.Errorf("one of -matrix or -file is required")
	}
}

func buildDistribution(a *sparse.CSR, method string, k int, seed int64) (*distrib.Distribution, *core.Mesh, error) {
	opt := baselines.Options{Seed: seed}
	switch method {
	case "1d":
		return baselines.Rowwise1D(a, k, opt), nil, nil
	case "1d-col":
		return baselines.Colwise1D(a, k, opt), nil, nil
	case "2d":
		return baselines.FineGrain2D(a, k, opt), nil, nil
	case "2d-b":
		return baselines.Checkerboard2DB(a, k, opt), nil, nil
	case "1d-b":
		rows := baselines.RowwiseParts(a, k, opt)
		return baselines.OneDB(a, rows, k, opt), nil, nil
	case "s2d", "s2d-opt", "s2d-b":
		rows := baselines.RowwiseParts(a, k, opt)
		oneD := baselines.Rowwise1DFromParts(a, rows, k)
		var d *distrib.Distribution
		if method == "s2d-opt" {
			d = core.Optimal(a, oneD.XPart, oneD.YPart, k)
		} else {
			d = core.Balanced(a, oneD.XPart, oneD.YPart, k, core.BalanceConfig{})
		}
		if method == "s2d-b" {
			mesh := core.NewMesh(k)
			return d, &mesh, nil
		}
		return d, nil, nil
	case "s2d-mg":
		return baselines.MediumGrainS2D(a, k, opt), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown method %q", method)
	}
}

func verifyEngine(a *sparse.CSR, d *distrib.Distribution, mesh *core.Mesh) error {
	r := rand.New(rand.NewSource(7))
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = r.Float64()*2 - 1
	}
	want := make([]float64, a.Rows)
	a.MulVec(x, want)
	got := make([]float64, a.Rows)
	if mesh != nil {
		e, err := spmv.NewRoutedEngine(d, *mesh)
		if err != nil {
			return err
		}
		defer e.Close()
		e.Multiply(x, got)
	} else {
		e, err := spmv.NewEngine(d)
		if err != nil {
			return err
		}
		defer e.Close()
		e.Multiply(x, got)
	}
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9*(1+math.Abs(want[i])) {
			return fmt.Errorf("y[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	return nil
}
