// Package repro reproduces "Semi-two-dimensional partitioning for parallel
// sparse matrix-vector multiplication" (Kayaaslan, Uçar, Aykanat; PCO
// 2015, IPDPS Workshops).
//
// The library lives under internal/: sparse matrices (internal/sparse),
// synthetic workload generators (internal/gen), bipartite matching and
// Dulmage–Mendelsohn decomposition (internal/bipartite), hypergraph models
// and a multilevel partitioner (internal/hypergraph, internal/partition),
// the s2D core (internal/core), the comparison methods
// (internal/baselines), the method registry and memoizing build pipeline
// through which every consumer constructs partitions (internal/method), a
// message-passing SpMV engine that compiles each schedule into an
// allocation-free execution plan run by persistent workers, serving
// single-vector Multiply, batched multi-RHS MultiplyBlock/MultiplyMulti
// with one packet per peer per phase at any width, and the transpose
// product MultiplyTranspose (plus its blocked twins), which reuses each
// plan's packets with the phases reversed (internal/spmv), iterative
// solvers including block CG, block BiCGSTAB, multi-seed PageRank over
// one SpMM per iteration, and the least-squares pair LSQR/CGNR over
// (Ax, Aᵀx) (internal/solver), the α–β cost model with its batched
// EvaluateNRHS and duality-stating EvaluateTranspose extensions
// (internal/model), and the experiment harness regenerating the paper's
// Tables I–VII and Figure 1 — plus the multi-RHS scaling table the paper
// never measured — as data-driven loops over the registry
// (internal/harness), and the multi-tenant serving subsystem — a
// refcounted LRU engine pool with a request-coalescing batch scheduler,
// HTTP JSON API, and closed-loop load generator (internal/serve,
// cmd/spmvserve, cmd/loadgen).
//
// See README.md for a tour and DESIGN.md for the system inventory and
// layer contracts. The benchmarks in bench_test.go regenerate one table
// or figure each; BENCH_*.json files hold the machine-readable engine
// baselines emitted by cmd/spmvbench -json, and LOADGEN_*.json the
// serving-throughput baselines emitted by cmd/spmvserve -selftest.
package repro
