// Package analysistest is a minimal golden-file harness for this
// module's analyzers, mirroring the x/tools analysistest contract:
// test packages live under testdata/src/<pkg>, and every expected
// diagnostic is declared in-line with a `// want "regexp"` comment on
// the offending line. A test fails on any missed want, any unexpected
// diagnostic, or any analyzer error — so a neutered analyzer fails its
// own suite.
//
// Packages are typechecked with the same loader the standalone driver
// uses: testdata packages resolve against each other by import path
// (list dependencies first), and everything else resolves through the
// compiler's export data via `go list -export`.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"repro/tools/spmvlint/internal/driver"
)

// want is one expected diagnostic.
type want struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run checks the analyzer against the packages under dir/src, in the
// given order (dependencies first, so facts flow to importers).
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()

	loader := driver.NewLoader()
	type parsed struct {
		path  string
		name  string
		files []*ast.File
	}
	var units []parsed
	var wants []*want
	external := make(map[string]bool)
	local := make(map[string]bool)
	for _, p := range pkgs {
		local[p] = true
	}

	for _, p := range pkgs {
		root := filepath.Join(dir, "src", p)
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Fatalf("reading %s: %v", root, err)
		}
		u := parsed{path: p}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			full := filepath.Join(root, e.Name())
			f, err := parser.ParseFile(loader.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parse %s: %v", full, err)
			}
			u.files = append(u.files, f)
			u.name = f.Name.Name
			for _, imp := range f.Imports {
				ip, _ := strconv.Unquote(imp.Path.Value)
				if !local[ip] {
					external[ip] = true
				}
			}
			ws, err := parseWants(full)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
		units = append(units, u)
	}

	if len(external) > 0 {
		patterns := make([]string, 0, len(external))
		for ip := range external {
			patterns = append(patterns, ip)
		}
		sort.Strings(patterns)
		exports, err := driver.ListExports(patterns)
		if err != nil {
			t.Fatalf("resolving testdata imports: %v", err)
		}
		for ip, file := range exports { //spmvlint:unordered keyed registration; one entry per import path
			loader.AddExport(ip, file)
		}
	}

	var tcheck []*driver.Package
	for _, u := range units {
		pkg, err := loader.TypeCheck(u.path, u.name, "", u.files)
		if err != nil {
			t.Fatalf("typecheck %s: %v", u.path, err)
		}
		tcheck = append(tcheck, pkg)
	}

	diags, err := driver.RunAnalyzers(loader.Fset, tcheck, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		file, line := splitPos(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == file && w.line == line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", file, line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("no diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// parseWants extracts `// want "re" ["re" ...]` comments; each quoted
// regexp is one expected diagnostic on that line.
func parseWants(path string) ([]*want, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []*want
	base := filepath.Base(path)
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rest := strings.TrimSpace(m[1])
		for rest != "" {
			if rest[0] != '"' && rest[0] != '`' {
				return nil, fmt.Errorf("%s:%d: malformed want %q", base, i+1, m[1])
			}
			lit, remainder, err := cutQuoted(rest)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", base, i+1, err)
			}
			re, err := regexp.Compile(lit)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want regexp: %v", base, i+1, err)
			}
			out = append(out, &want{file: base, line: i + 1, re: re})
			rest = strings.TrimSpace(remainder)
		}
	}
	return out, nil
}

// cutQuoted splits a leading Go string literal off rest.
func cutQuoted(rest string) (lit, remainder string, err error) {
	q := rest[0]
	for i := 1; i < len(rest); i++ {
		if rest[i] == '\\' && q == '"' {
			i++
			continue
		}
		if rest[i] == q {
			s, err := strconv.Unquote(rest[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("bad want literal %s: %v", rest[:i+1], err)
			}
			return s, rest[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated want literal %s", rest)
}

// splitPos extracts (base filename, line) from "path:line:col".
func splitPos(pos string) (string, int) {
	parts := strings.Split(pos, ":")
	if len(parts) < 2 {
		return pos, 0
	}
	line, _ := strconv.Atoi(parts[len(parts)-2])
	return filepath.Base(parts[0]), line
}
