// Package reach is the transitive-reachability engine shared by the
// hotpathalloc and detrange analyzers. Both enforce contracts of the
// form "functions annotated X must not reach construct Y through any
// chain of static calls within the module": reach computes, per
// function, a flattened summary of every forbidden site reachable from
// its body, exports the summaries as object facts so the contract
// crosses package boundaries, and reports at the annotated roots.
//
// Summaries are flattened before export: a fact on an exported function
// already contains the sites contributed by its unexported transitive
// callees, so dependent packages never need visibility into this
// package's internals. Traversal follows only static calls (direct
// calls and method calls with a concrete receiver resolved by
// go/types); calls through interface values, function-typed variables,
// and goroutine handoffs are invisible to it — the documented blind
// spot, covered dynamically by the AllocsPerRun contract tests.
package reach

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"repro/tools/spmvlint/internal/lintutil"
)

// Site is one forbidden construct, as seen from some function that
// reaches it. Desc and Loc are fixed at the construct; Via grows one
// callee name per package boundary the summary is lifted across.
type Site struct {
	Desc string   // e.g. "make([]float64)"
	Loc  string   // "plan.go:131" — file base + line of the construct
	Via  []string // call chain from the summarized function, outermost first
}

// Summary is the per-function fact. Each analyzer supplies its own
// concrete type so its facts never collide with another analyzer's.
type Summary interface {
	analysis.Fact
	Sites() []Site
	SetSites([]Site)
}

// Config parameterizes one analyzer over the engine.
type Config struct {
	// Label prefixes diagnostics, e.g. "hot path".
	Label string
	// RootMarker annotates the functions whose transitive closure is
	// checked (lintutil.MarkHotPath, lintutil.MarkDeterministic).
	RootMarker string
	// PruneMarker, when non-empty, annotates functions the traversal
	// must not enter (cold fault paths).
	PruneMarker string
	// Classify reports whether the node is a forbidden construct.
	Classify func(pass *analysis.Pass, n ast.Node) (desc string, bad bool)
	// ExternalCall reports whether a call to a function outside the
	// module (no fact, foreign package) is itself forbidden, e.g.
	// fmt.Sprintf for hot paths or time.Now for deterministic ones.
	ExternalCall func(fn *types.Func) (desc string, bad bool)
	// NewSummary returns a fresh fact of the analyzer's concrete type.
	NewSummary func() Summary
	// MaxSites caps each exported summary (0 means 32): one broken leaf
	// reached by everything must not balloon every fact above it.
	MaxSites int
}

// site pairs a Site with the position it is reported at in the current
// package: the construct itself for direct sites, the outgoing call
// expression for lifted ones.
type site struct {
	Site
	pos token.Pos
}

type funcInfo struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	direct  []site        // forbidden constructs in the body
	callees []*types.Func // static callees, in source order
	calls   map[*types.Func]token.Pos
	pruned  bool
	root    bool
}

// Run executes the engine for one package.
func (c *Config) Run(pass *analysis.Pass) (interface{}, error) {
	maxSites := c.MaxSites
	if maxSites == 0 {
		maxSites = 32
	}

	funcs := make(map[*types.Func]*funcInfo)
	var order []*funcInfo
	for _, f := range lintutil.NonTestFiles(pass) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{
				decl:   fd,
				obj:    obj,
				calls:  make(map[*types.Func]token.Pos),
				pruned: c.PruneMarker != "" && lintutil.FuncHas(fd, c.PruneMarker),
				root:   lintutil.FuncHas(fd, c.RootMarker),
			}
			funcs[obj] = fi
			order = append(order, fi)
		}
	}

	for _, fi := range order {
		c.scanBody(pass, fi)
	}

	// Flatten: union of direct sites over the locally-reachable set plus
	// lifted sites at module-boundary calls. Per-function BFS keeps
	// cycles trivially correct.
	flat := make(map[*types.Func][]site)
	var flatten func(fi *funcInfo) []site
	flatten = func(fi *funcInfo) []site {
		if s, ok := flat[fi.obj]; ok {
			return s
		}
		// Each queue entry remembers the call expression in fi that its
		// chain entered through (reports anchor there) and the local
		// chain of hops taken.
		type hop struct {
			fn    *funcInfo
			pos   token.Pos // call site in fi; 0 for fi itself
			chain []string
		}
		visited := map[*funcInfo]bool{fi: true}
		queue := []hop{{fn: fi}}
		var out []site
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, s := range cur.fn.direct {
				s := s
				if cur.fn != fi {
					s.pos = cur.pos
					s.Via = append(append([]string{}, cur.chain...), s.Via...)
				}
				out = append(out, s)
			}
			for _, callee := range cur.fn.callees {
				target, ok := funcs[callee]
				if !ok {
					// Module-internal callee in another package: its
					// flattened fact (if any) carries the sites.
					sum := c.NewSummary()
					if callee.Pkg() != nil && callee.Pkg() != pass.Pkg && pass.ImportObjectFact(callee, sum) {
						pos, chain := cur.pos, cur.chain
						if cur.fn == fi {
							pos, chain = cur.fn.calls[callee], nil
						}
						for _, is := range sum.Sites() {
							via := append(append([]string{}, chain...), funcName(callee))
							out = append(out, site{
								Site: Site{Desc: is.Desc, Loc: is.Loc, Via: append(via, is.Via...)},
								pos:  pos,
							})
						}
					}
					continue
				}
				if target.pruned || visited[target] {
					continue
				}
				visited[target] = true
				pos, chain := cur.pos, cur.chain
				if cur.fn == fi {
					pos = cur.fn.calls[callee]
				}
				queue = append(queue, hop{
					fn:    target,
					pos:   pos,
					chain: append(append([]string{}, chain...), funcName(callee)),
				})
			}
		}
		out = dedupe(out)
		if len(out) > maxSites {
			out = out[:maxSites]
		}
		flat[fi.obj] = out
		return out
	}

	for _, fi := range order {
		sites := flatten(fi)
		if len(sites) == 0 || fi.pruned {
			continue
		}
		sum := c.NewSummary()
		exp := make([]Site, len(sites))
		for i, s := range sites {
			exp[i] = s.Site
		}
		sum.SetSites(exp)
		pass.ExportObjectFact(fi.obj, sum)
	}

	for _, fi := range order {
		if !fi.root {
			continue
		}
		for _, s := range flatten(fi) {
			if len(s.Via) == 0 {
				pass.Reportf(s.pos, "%s: %s", c.Label, s.Desc)
				continue
			}
			via := ""
			if len(s.Via) > 1 {
				via = " via " + strings.Join(s.Via, " → ")
			}
			pass.Reportf(s.pos, "%s: call to %s reaches %s (%s)%s",
				c.Label, s.Via[0], s.Desc, s.Loc, via)
		}
	}
	return nil, nil
}

// scanBody classifies fi's body and records static callees. Function
// literal bodies are not traversed: a closure built here runs on some
// other schedule (a worker loop, a sort comparator), so its calls are
// not part of this function's own execution — for hot paths the
// literal itself is already a violation, and for determinism deferred
// work is outside the contract. A nondeterministic closure invoked
// synchronously is the documented blind spot this buys.
func (c *Config) scanBody(pass *analysis.Pass, fi *funcInfo) {
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			if desc, bad := c.Classify(pass, n); bad {
				fi.direct = append(fi.direct, site{
					Site: Site{Desc: desc, Loc: shortPos(pass.Fset, n.Pos())},
					pos:  n.Pos(),
				})
			}
			return false
		}
		if desc, bad := c.Classify(pass, n); bad {
			fi.direct = append(fi.direct, site{
				Site: Site{Desc: desc, Loc: shortPos(pass.Fset, n.Pos())},
				pos:  n.Pos(),
			})
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := typeutil.Callee(pass.TypesInfo, call)
		fn, ok := callee.(*types.Func)
		if !ok {
			return true
		}
		fn = fn.Origin()
		if c.ExternalCall != nil && fn.Pkg() != pass.Pkg {
			if desc, bad := c.ExternalCall(fn); bad {
				fi.direct = append(fi.direct, site{
					Site: Site{Desc: desc, Loc: shortPos(pass.Fset, call.Pos())},
					pos:  call.Pos(),
				})
				return true
			}
		}
		if _, seen := fi.calls[fn]; !seen {
			fi.calls[fn] = call.Pos()
			fi.callees = append(fi.callees, fn)
		}
		return true
	})
}

func dedupe(sites []site) []site {
	sort.SliceStable(sites, func(i, j int) bool {
		if sites[i].pos != sites[j].pos {
			return sites[i].pos < sites[j].pos
		}
		return sites[i].Desc < sites[j].Desc
	})
	out := sites[:0]
	seen := make(map[string]bool)
	for _, s := range sites {
		key := fmt.Sprintf("%d|%s|%s", s.pos, s.Desc, s.Loc)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, s)
	}
	return out
}

func funcName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
