// Package driver runs go/analysis analyzers over a module without
// golang.org/x/tools/go/packages: it shells out to `go list -deps
// -export -json` for the package graph, typechecks the module's own
// packages from source in dependency order (imports outside the module
// resolve through the compiler's export data, so the stdlib is never
// re-typechecked), and executes the analyzers with an in-process fact
// store. Because every module package lives in one type universe,
// object facts flow between packages without serialization — the same
// semantics `go vet -vettool=` provides via the unitchecker protocol.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Diagnostic is one reported finding, position pre-rendered.
type Diagnostic struct {
	Pos      string
	Analyzer string
	Message  string
	pos      token.Pos
}

// listPkg is the subset of `go list -json` output the driver consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Export     string
	Standard   bool
	Module     *struct {
		Path      string
		Main      bool
		GoVersion string
	}
	Error *struct{ Err string }
}

// goList runs `go list -deps -export -json patterns...` and decodes the
// package stream.
func goList(patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ListExports resolves the patterns (plus their dependency closure) to
// compiler export-data files, building them into the go cache if
// needed. The analysistest harness uses it to satisfy testdata imports
// of the standard library.
func ListExports(patterns []string) (map[string]string, error) {
	metas, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(metas))
	for _, m := range metas {
		if m.Export != "" {
			out[m.ImportPath] = m.Export
		}
	}
	return out, nil
}

// Run loads the packages matching the patterns in args (default ./...)
// and runs the analyzers. Arguments of the form -analyzer.flag=value
// set analyzer flags first.
func Run(args []string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	var patterns []string
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			patterns = append(patterns, a)
			continue
		}
		if err := setAnalyzerFlag(analyzers, strings.TrimLeft(a, "-")); err != nil {
			return nil, err
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	metas, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listPkg, len(metas))
	for _, m := range metas {
		byPath[m.ImportPath] = m
	}

	loader := NewLoader()
	var moduleOrder []*listPkg
	for _, m := range metas {
		if m.Error != nil {
			return nil, fmt.Errorf("%s: %s", m.ImportPath, m.Error.Err)
		}
		if m.Module != nil && m.Module.Main && !m.Standard {
			if len(m.CgoFiles) > 0 {
				return nil, fmt.Errorf("%s: cgo packages are not supported", m.ImportPath)
			}
			moduleOrder = append(moduleOrder, m)
			continue
		}
		if m.Export != "" {
			loader.AddExport(m.ImportPath, m.Export)
		}
	}
	moduleOrder = topoSort(moduleOrder, byPath)

	var pkgs []*Package
	for _, m := range moduleOrder {
		var files []*ast.File
		for _, gf := range m.GoFiles {
			f, err := parser.ParseFile(loader.Fset, join(m.Dir, gf), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		goVersion := ""
		if m.Module != nil && m.Module.GoVersion != "" {
			goVersion = "go" + m.Module.GoVersion
		}
		p, err := loader.TypeCheck(m.ImportPath, m.Name, goVersion, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}

	diags, err := RunAnalyzers(loader.Fset, pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return diags, nil
}

func setAnalyzerFlag(analyzers []*analysis.Analyzer, kv string) error {
	name, rest, ok := strings.Cut(kv, ".")
	if !ok {
		return fmt.Errorf("unknown flag -%s (analyzer flags are -name.flag=value)", kv)
	}
	flagName, value, ok := strings.Cut(rest, "=")
	if !ok {
		return fmt.Errorf("flag -%s needs =value", kv)
	}
	for _, a := range analyzers {
		if a.Name == name {
			if f := a.Flags.Lookup(flagName); f != nil {
				return f.Value.Set(value)
			}
			return fmt.Errorf("analyzer %s has no flag %q", name, flagName)
		}
	}
	return fmt.Errorf("no analyzer named %q", name)
}

// topoSort orders module packages so every import precedes its
// importers; ties resolve by path for reproducible runs.
func topoSort(pkgs []*listPkg, byPath map[string]*listPkg) []*listPkg {
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	inSet := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		inSet[p.ImportPath] = true
	}
	var out []*listPkg
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *listPkg)
	visit = func(p *listPkg) {
		if state[p.ImportPath] != 0 {
			return
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if inSet[imp] {
				visit(byPath[imp])
			}
		}
		state[p.ImportPath] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

func join(dir, file string) string {
	if strings.HasPrefix(file, "/") {
		return file
	}
	return dir + "/" + file
}
