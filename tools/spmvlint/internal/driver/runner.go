package driver

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"reflect"
	"sort"

	"golang.org/x/tools/go/analysis"
)

// RunAnalyzers executes the analyzers (and their Requires closures)
// over the packages, which must already be in dependency order. All
// facts live in one in-process store keyed by object/package identity —
// every package was typechecked in one universe, so no serialization
// happens.
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	for _, a := range analyzers {
		if err := analysis.Validate([]*analysis.Analyzer{a}); err != nil {
			return nil, err
		}
	}

	store := &factStore{
		obj: make(map[factKey]analysis.Fact),
		pkg: make(map[pkgFactKey]analysis.Fact),
	}
	type resultKey struct {
		a *analysis.Analyzer
		p *Package
	}
	results := make(map[resultKey]interface{})
	var diags []Diagnostic

	var runOne func(a *analysis.Analyzer, p *Package) error
	runOne = func(a *analysis.Analyzer, p *Package) error {
		key := resultKey{a, p}
		if _, done := results[key]; done {
			return nil
		}
		deps := make(map[*analysis.Analyzer]interface{})
		for _, req := range a.Requires {
			if err := runOne(req, p); err != nil {
				return err
			}
			deps[req] = results[resultKey{req, p}]
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      p.Files,
			Pkg:        p.Types,
			TypesInfo:  p.Info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   deps,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, Diagnostic{
					Pos:      fset.Position(d.Pos).String(),
					Analyzer: a.Name,
					Message:  d.Message,
					pos:      d.Pos,
				})
			},
			ImportObjectFact:  store.importObjectFact,
			ImportPackageFact: store.importPackageFact,
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				store.obj[factKey{obj, reflect.TypeOf(fact)}] = fact
			},
			ExportPackageFact: func(fact analysis.Fact) {
				store.pkg[pkgFactKey{p.Types, reflect.TypeOf(fact)}] = fact
			},
			AllObjectFacts:  store.allObjectFacts,
			AllPackageFacts: store.allPackageFacts,
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s on %s: %v", a.Name, p.Path, err)
		}
		results[key] = res
		return nil
	}

	for _, p := range pkgs {
		for _, a := range analyzers {
			if err := runOne(a, p); err != nil {
				return nil, err
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		if diags[i].pos != diags[j].pos {
			return diags[i].pos < diags[j].pos
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

type factKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

type factStore struct {
	obj map[factKey]analysis.Fact
	pkg map[pkgFactKey]analysis.Fact
}

func (s *factStore) importObjectFact(obj types.Object, fact analysis.Fact) bool {
	got, ok := s.obj[factKey{obj, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

func (s *factStore) importPackageFact(pkg *types.Package, fact analysis.Fact) bool {
	got, ok := s.pkg[pkgFactKey{pkg, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

func (s *factStore) allObjectFacts() []analysis.ObjectFact {
	out := make([]analysis.ObjectFact, 0, len(s.obj))
	for k, f := range s.obj {
		out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.Pos() < out[j].Object.Pos() })
	return out
}

func (s *factStore) allPackageFacts() []analysis.PackageFact {
	out := make([]analysis.PackageFact, 0, len(s.pkg))
	for k, f := range s.pkg {
		out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Package.Path() < out[j].Package.Path() })
	return out
}
