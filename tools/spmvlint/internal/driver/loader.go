package driver

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
)

// Package is one typechecked source package.
type Package struct {
	Path    string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	imports []*types.Package
}

// Loader typechecks source packages in dependency order. Imports
// resolve to previously-typechecked source packages when available
// (one shared type universe, so facts can key on object identity) and
// to compiler export data otherwise.
type Loader struct {
	Fset    *token.FileSet
	exports map[string]string   // import path -> export data file
	pkgs    map[string]*Package // typechecked source packages
	gc      types.ImporterFrom
}

func NewLoader() *Loader {
	l := &Loader{
		Fset:    token.NewFileSet(),
		exports: make(map[string]string),
		pkgs:    make(map[string]*Package),
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", lookup).(types.ImporterFrom)
	return l
}

// AddExport registers export data for one import path.
func (l *Loader) AddExport(path, file string) { l.exports[path] = file }

// Package returns a previously typechecked package.
func (l *Loader) Package(path string) *Package { return l.pkgs[path] }

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	return l.gc.ImportFrom(path, "", 0)
}

// TypeCheck parses nothing itself: it typechecks the given files as
// package path and memoizes the result for later imports.
func (l *Loader) TypeCheck(path, name, goVersion string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		Instances:    make(map[*ast.Ident]types.Instance),
		FileVersions: make(map[*ast.File]string),
	}
	conf := &types.Config{
		Importer:  l,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	p := &Package{Path: path, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}
