// Package lintutil holds the annotation grammar and small shared
// helpers for the spmvlint analyzers.
//
// Function annotations (in the doc comment of a FuncDecl):
//
//	//spmv:hotpath        steady-state no-alloc contract; hotpathalloc
//	                      checks the body and everything it statically
//	                      calls within the module
//	//spmv:coldpath       excluded from hotpathalloc traversal: a
//	                      fault/error branch that is pre-verified cold
//	//spmv:deterministic  no wall-clock or unseeded randomness reachable;
//	                      checked transitively by detrange
//	//spmv:errwriter      the function is an error-envelope writer;
//	                      typederr permits WriteHeader(>=400) inside it
//	                      and audits direct fmt.Errorf/errors.New
//	                      arguments at its call sites
//	//spmv:dimcheck       the function is a documented dimension-check
//	                      helper; typederr permits panic inside it
//
// Statement annotations (a // comment on the line directly above the
// statement, or trailing on the statement's first line):
//
//	//spmvlint:unordered   this map range is order-insensitive by
//	                       construction (commutative aggregation, or a
//	                       selection with a total tie-break)
//	//spmvlint:allowpanic  this panic is deliberate (fault injection,
//	                       contained by a recover upstream)
//
// Annotations may carry a trailing rationale after a space:
// //spmvlint:unordered min-selection with name tie-break.
package lintutil

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Function-level annotation markers.
const (
	MarkHotPath       = "spmv:hotpath"
	MarkColdPath      = "spmv:coldpath"
	MarkDeterministic = "spmv:deterministic"
	MarkErrWriter     = "spmv:errwriter"
	MarkDimCheck      = "spmv:dimcheck"
)

// Statement-level annotation markers.
const (
	MarkUnordered  = "spmvlint:unordered"
	MarkAllowPanic = "spmvlint:allowpanic"
)

// markerOf extracts the marker from one comment: "//spmv:hotpath" or
// "//spmvlint:unordered rationale..." -> "spmv:hotpath",
// "spmvlint:unordered". Directive comments have no space after "//".
func markerOf(c *ast.Comment) string {
	text := c.Text
	if !strings.HasPrefix(text, "//spmv") {
		return ""
	}
	text = strings.TrimPrefix(text, "//")
	if i := strings.IndexByte(text, ' '); i >= 0 {
		text = text[:i]
	}
	if strings.HasPrefix(text, "spmv:") || strings.HasPrefix(text, "spmvlint:") {
		return text
	}
	return ""
}

// FuncHas reports whether fn's doc comment carries the marker.
func FuncHas(fn *ast.FuncDecl, marker string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if markerOf(c) == marker {
			return true
		}
	}
	return false
}

type markKey struct {
	file   string
	line   int
	marker string
}

// NewStmtMarks indexes every statement-level annotation in the files by
// the line it applies to: a comment on line N annotates the statement
// starting on line N+1, and a trailing comment annotates its own line.
func NewStmtMarks(fset *token.FileSet, files ...*ast.File) *StmtMarksSet {
	s := &StmtMarksSet{fset: fset, lines: make(map[markKey]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := markerOf(c)
				if m == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				// The comment covers its own line (trailing form) and
				// the next line (leading form).
				s.lines[markKey{pos.Filename, pos.Line, m}] = true
				s.lines[markKey{pos.Filename, pos.Line + 1, m}] = true
			}
		}
	}
	return s
}

// StmtMarksSet answers "is the statement at pos annotated with marker".
type StmtMarksSet struct {
	fset  *token.FileSet
	lines map[markKey]bool
}

// Has reports whether the statement starting at pos carries marker.
func (s *StmtMarksSet) Has(pos token.Pos, marker string) bool {
	p := s.fset.Position(pos)
	return s.lines[markKey{p.Filename, p.Line, marker}]
}

// IsTestFile reports whether pos sits in a _test.go file. The static
// invariants bind production code; tests exercise forbidden constructs
// (and re-state event literals) freely.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// NonTestFiles returns the pass's files excluding _test.go files.
func NonTestFiles(pass *analysis.Pass) []*ast.File {
	var out []*ast.File
	for _, f := range pass.Files {
		if !IsTestFile(pass.Fset, f.Pos()) {
			out = append(out, f)
		}
	}
	return out
}
