package kernels

import (
	"fmt"

	"kernels/leaf"
)

//spmv:hotpath
func Direct(dst []float64, s string) {
	buf := make([]float64, 4) // want `hot path: make`
	_ = buf
	dst = append(dst, 1) // want `hot path: append \(growth cannot be proven static\)`
	m := map[int]int{}   // want `hot path: map literal`
	_ = m
	f := func() {} // want `hot path: function literal \(closure\)`
	f()
	defer fmt.Println(dst) // want `hot path: defer statement` `hot path: call to fmt.Println \(allocates\)`
	_ = s + s              // want `hot path: string concatenation`
	_ = []byte(s)          // want `hot path: string <-> slice conversion`
	_ = interface{}(dst)   // want `hot path: conversion to interface`
}

//spmv:hotpath
func CrossPackage() {
	_ = leaf.Alloc() // want `hot path: call to Alloc reaches make \(leaf\.go:\d+\)`
}

//spmv:hotpath
func Lifted() {
	helper() // want `hot path: call to helper reaches make \(leaf\.go:\d+\) via helper → Alloc`
}

func helper() {
	_ = leaf.Alloc()
}

//spmv:hotpath
func PrunedFault(x []float64) {
	coldFault(x) // pruned: no diagnostic
}

//spmv:coldpath fault branch, pre-verified cold
func coldFault(x []float64) {
	fmt.Sprintln(x)
}

//spmv:hotpath
func CleanKernel(dst, x []float64) {
	s := 0.0
	for i := range x {
		s += x[i] * leaf.Clean(x[i], 2)
	}
	dst[0] = s
}

// unannotated: allocations here are fine.
func BuildTime() []float64 {
	return make([]float64, 128)
}
