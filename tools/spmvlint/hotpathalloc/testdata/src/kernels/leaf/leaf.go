package leaf

// Alloc is an unannotated helper in another package; its allocation is
// carried to hot callers through the exported flattened fact.
func Alloc() []int {
	return make([]int, 8)
}

// Clean has no forbidden constructs.
func Clean(a, b float64) float64 {
	return a * b
}
