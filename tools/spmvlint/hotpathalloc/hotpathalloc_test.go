package hotpathalloc_test

import (
	"testing"

	"repro/tools/spmvlint/hotpathalloc"
	"repro/tools/spmvlint/internal/analysistest"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "kernels/leaf", "kernels")
}
