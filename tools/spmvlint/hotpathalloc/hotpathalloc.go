// Package hotpathalloc pins the repo's 0 allocs/op contract statically:
// a function annotated //spmv:hotpath — and everything it statically
// calls within the module — must not contain allocating constructs.
// The AllocsPerRun contract tests verify the branches they exercise;
// this analyzer verifies every branch at every call site.
//
// Forbidden in a hot path (directly or transitively):
//
//   - make, new, append (growth cannot be proven statically, so any
//     append is out — hot paths write through preallocated buffers)
//   - map, slice, and &composite literals
//   - function literals (closures capture, and captures escape)
//   - defer and go statements
//   - explicit conversions to interface types
//   - string concatenation and string<->[]byte/[]rune conversions
//   - calls into fmt, log, log/slog, errors, sort, strings, strconv —
//     the formatting/boxing packages that allocate by design
//
// Functions annotated //spmv:coldpath (fault branches, pre-verified
// cold) are not traversed. Dynamic calls — through interface values or
// stored func values — are invisible; that blind spot stays covered by
// the AllocsPerRun tests.
package hotpathalloc

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/tools/spmvlint/internal/lintutil"
	"repro/tools/spmvlint/internal/reach"
)

// Summary is the flattened per-function fact: every allocating site
// reachable from the function through static calls in the module.
type Summary struct {
	Found []reach.Site
}

func (*Summary) AFact()                    {}
func (s *Summary) Sites() []reach.Site     { return s.Found }
func (s *Summary) SetSites(v []reach.Site) { s.Found = v }
func (s *Summary) String() string          { return "hotpathalloc" }

// allocPkgs are packages whose entry points allocate by design.
var allocPkgs = map[string]bool{
	"fmt":      true,
	"log":      true,
	"log/slog": true,
	"errors":   true,
	"sort":     true,
	"strings":  true,
	"strconv":  true,
}

var engine = &reach.Config{
	Label:       "hot path",
	RootMarker:  lintutil.MarkHotPath,
	PruneMarker: lintutil.MarkColdPath,
	Classify:    classify,
	ExternalCall: func(fn *types.Func) (string, bool) {
		if fn.Pkg() != nil && allocPkgs[fn.Pkg().Path()] {
			return "call to " + fn.Pkg().Name() + "." + fn.Name() + " (allocates)", true
		}
		return "", false
	},
	NewSummary: func() reach.Summary { return new(Summary) },
}

var Analyzer = &analysis.Analyzer{
	Name:      "hotpathalloc",
	Doc:       "reports allocating constructs reachable from //spmv:hotpath functions",
	Run:       engine.Run,
	FactTypes: []analysis.Fact{new(Summary)},
}

func classify(pass *analysis.Pass, n ast.Node) (string, bool) {
	switch n := n.(type) {
	case *ast.CallExpr:
		return classifyCall(pass, n)
	case *ast.CompositeLit:
		switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
		case *types.Map:
			return "map literal", true
		case *types.Slice:
			return "slice literal", true
		}
	case *ast.UnaryExpr:
		if n.Op.String() == "&" {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				return "&composite literal (heap escape)", true
			}
		}
	case *ast.FuncLit:
		return "function literal (closure)", true
	case *ast.DeferStmt:
		return "defer statement", true
	case *ast.GoStmt:
		return "go statement", true
	case *ast.BinaryExpr:
		if n.Op.String() == "+" {
			if t, ok := pass.TypesInfo.TypeOf(n).Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
				return "string concatenation", true
			}
		}
	}
	return "", false
}

func classifyCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				return "make", true
			case "new":
				return "new", true
			case "append":
				return "append (growth cannot be proven static)", true
			}
			return "", false
		}
	}
	// Conversions: T(x) where T is an interface, string<->[]byte/[]rune.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		dst := tv.Type
		if len(call.Args) != 1 {
			return "", false
		}
		src := pass.TypesInfo.TypeOf(call.Args[0])
		if src == nil {
			return "", false
		}
		if types.IsInterface(dst.Underlying()) && !types.IsInterface(src.Underlying()) {
			return "conversion to interface " + dst.String(), true
		}
		if isString(dst) != isString(src) && (isByteOrRuneSlice(dst) || isByteOrRuneSlice(src)) {
			return "string <-> slice conversion", true
		}
	}
	return "", false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}
