package detrange_test

import (
	"testing"

	"repro/tools/spmvlint/detrange"
	"repro/tools/spmvlint/internal/analysistest"
)

func TestDetRange(t *testing.T) {
	analysistest.Run(t, "testdata", detrange.Analyzer, "plans")
}
