// Package detrange pins the repo's bitwise-determinism contract
// statically, in two parts.
//
// Map ranges: Go randomizes map iteration order, so a `range` over a
// map whose effects leak into ordered output (plan compilation,
// Prometheus exposition, JSON metrics, error messages) is a
// nondeterminism bug. Every map range is flagged unless its body is
// built only from provably order-insensitive statements — collect
// appends (sorted by the caller), writes into other maps / deletes,
// commutative integer updates (x += v, x++, |=, &=, ^=), pure local
// declarations, guard-ifs around those, bare continue — or it is
// annotated //spmvlint:unordered with a rationale (commutative
// aggregation behind a method call, or a selection with a total
// tie-break). The collect shape is accepted on faith that the sort
// follows: that blind spot is the price of a syntactic check.
//
// Wall-clock and randomness: functions annotated //spmv:deterministic
// (plan construction entry points) must not reach time.Now/Since/Until,
// package-level math/rand functions (the global, unseeded source), or
// crypto/rand through any chain of static calls within the module.
// Methods on a *rand.Rand value are allowed — those are the seeded
// sources the build pipeline threads everywhere.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/tools/spmvlint/internal/lintutil"
	"repro/tools/spmvlint/internal/reach"
)

// Summary is the flattened per-function fact: every wall-clock or
// unseeded-randomness site reachable from the function.
type Summary struct {
	Found []reach.Site
}

func (*Summary) AFact()                    {}
func (s *Summary) Sites() []reach.Site     { return s.Found }
func (s *Summary) SetSites(v []reach.Site) { s.Found = v }
func (s *Summary) String() string          { return "detrange" }

var engine = &reach.Config{
	Label:      "deterministic",
	RootMarker: lintutil.MarkDeterministic,
	Classify: func(*analysis.Pass, ast.Node) (string, bool) {
		return "", false
	},
	ExternalCall: externalCall,
	NewSummary:   func() reach.Summary { return new(Summary) },
}

var Analyzer = &analysis.Analyzer{
	Name:      "detrange",
	Doc:       "reports map ranges feeding ordered output and wall-clock/randomness reachable from //spmv:deterministic functions",
	Run:       run,
	FactTypes: []analysis.Fact{new(Summary)},
}

func externalCall(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	pkgLevel := sig == nil || sig.Recv() == nil
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name() + " (wall clock)", true
		}
	case "math/rand", "math/rand/v2":
		// New/NewSource/NewPCG construct the seeded sources the build
		// pipeline threads everywhere; methods on them are fine too.
		// Only the package-level convenience funcs hit the global source.
		if pkgLevel && !strings.HasPrefix(fn.Name(), "New") {
			return fn.Pkg().Path() + "." + fn.Name() + " (global, unseeded source)", true
		}
	case "crypto/rand":
		if pkgLevel {
			return "crypto/rand." + fn.Name() + " (nondeterministic)", true
		}
	}
	return "", false
}

func run(pass *analysis.Pass) (interface{}, error) {
	if _, err := engine.Run(pass); err != nil {
		return nil, err
	}
	files := lintutil.NonTestFiles(pass)
	marks := lintutil.NewStmtMarks(pass.Fset, files...)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if marks.Has(rng.Pos(), lintutil.MarkUnordered) {
				return true
			}
			if orderInsensitiveBody(pass, rng) {
				return true
			}
			pass.Reportf(rng.Pos(), "map range order feeds surrounding code; sort the keys first, or annotate //spmvlint:unordered with why order cannot matter")
			return true
		})
	}
	return nil, nil
}

// orderInsensitiveBody accepts bodies whose effect provably does not
// depend on iteration order: every statement must be one of the
// allowed order-insensitive forms.
func orderInsensitiveBody(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	for _, s := range rng.Body.List {
		if !allowedStmt(pass, s) {
			return false
		}
	}
	return true
}

// allowedStmt is the per-statement whitelist. Anything outside it —
// plain assignments, arbitrary calls, returns, nested loops — makes
// the enclosing range order-sensitive as far as this check can tell.
func allowedStmt(pass *analysis.Pass, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return allowedAssign(pass, s)
	case *ast.IncDecStmt:
		// x++ / x-- commutes when x is an integer.
		return isIntExpr(pass, s.X)
	case *ast.ExprStmt:
		// delete(m, k) — removals commute.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin)
		return ok && b.Name() == "delete"
	case *ast.IfStmt:
		// A guard around order-insensitive statements stays
		// order-insensitive when the condition is pure.
		if s.Else != nil || s.Init != nil || !pureExpr(pass, s.Cond) {
			return false
		}
		for _, inner := range s.Body.List {
			if !allowedStmt(pass, inner) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		// A bare continue only filters iterations.
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.RangeStmt:
		// A nested loop of order-insensitive statements is itself
		// order-insensitive (a nested map range is still checked on
		// its own by the walk).
		for _, inner := range s.Body.List {
			if !allowedStmt(pass, inner) {
				return false
			}
		}
		return true
	case *ast.DeclStmt:
		// var x T / var x = <pure>.
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if !pureExpr(pass, v) {
					return false
				}
			}
		}
		return true
	}
	return false
}

func allowedAssign(pass *analysis.Pass, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.DEFINE:
		// Iteration-local definitions with pure right-hand sides.
		for _, r := range as.Rhs {
			if !pureExpr(pass, r) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
		token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative integer reductions: x += v and friends.
		// Float accumulation is excluded — float addition is not
		// associative, so its result is order-dependent bitwise.
		return len(as.Lhs) == 1 && isIntExpr(pass, as.Lhs[0]) && pureExpr(pass, as.Rhs[0])
	case token.ASSIGN:
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 && isCollectAppend(pass, as) {
			return true
		}
		// m[k] = v for every target: map insertions commute per key
		// (same-key collisions are a value question, not an order one,
		// only when keys derive from the loop variable — close enough
		// for the collect-into-maps idiom this accepts).
		for _, l := range as.Lhs {
			ix, ok := ast.Unparen(l).(*ast.IndexExpr)
			if !ok {
				return false
			}
			t := pass.TypesInfo.TypeOf(ix.X)
			if t == nil {
				return false
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return false
			}
		}
		return true
	}
	return false
}

// isCollectAppend matches `s = append(s, ...)` onto the same slice,
// where s is an identifier or a field selector chain.
func isCollectAppend(pass *analysis.Pass, as *ast.AssignStmt) bool {
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	return sameLValue(ast.Unparen(as.Lhs[0]), ast.Unparen(call.Args[0]))
}

// sameLValue reports whether two expressions name the same identifier
// or field-selector chain (x, x.f, x.f.g).
func sameLValue(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameLValue(ast.Unparen(a.X), ast.Unparen(b.X))
	}
	return false
}

func isIntExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// pureExpr reports whether evaluating e has no side effects and calls
// nothing except type conversions and the len/cap/min/max builtins.
func pureExpr(pass *analysis.Pass, e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap", "min", "max":
						return true
					}
				}
			}
			pure = false
			return false
		case *ast.FuncLit, *ast.UnaryExpr:
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op != token.ARROW {
				return true // & and arithmetic unaries are fine; <- is not
			}
			pure = false
			return false
		}
		return true
	})
	return pure
}
