package plans

import (
	"math/rand"
	"sort"
	"time"
)

// SumFloats is flagged: float accumulation is order-dependent bitwise.
func SumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `map range order feeds surrounding code`
		total += v
	}
	return total
}

// FirstMatch is flagged: the returned key depends on iteration order.
func FirstMatch(m map[string]int) string {
	for k, v := range m { // want `map range order feeds surrounding code`
		if v > 0 {
			return k
		}
	}
	return ""
}

// CollectSorted is the accepted collect-then-sort idiom.
func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// IntCounters is accepted: commutative integer updates, map writes, and
// guard-ifs only.
func IntCounters(m map[string]int) int {
	n := 0
	seen := make(map[string]bool)
	for k, v := range m {
		if v > 0 {
			n += v
			seen[k] = true
		}
		if v == 0 {
			continue
		}
	}
	return n + len(seen)
}

// Reviewed is accepted through the annotation.
func Reviewed(m map[string]int) int {
	best := 0
	for _, v := range m { //spmvlint:unordered running max; order cannot matter
		if v > best {
			best = v
		}
	}
	return best
}

//spmv:deterministic
func BuildPlan(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // seeded source: fine
	n := r.Intn(10)                     // method on the seeded source: fine
	n += rand.Intn(10)                  // want `deterministic: math/rand.Intn \(global, unseeded source\)`
	_ = time.Now()                      // want `deterministic: time.Now \(wall clock\)`
	stamp()                             // want `deterministic: call to stamp reaches time.Now \(wall clock\) \(plans\.go:\d+\)`
	return n
}

func stamp() {
	_ = time.Now()
}

// unannotated: wall-clock use is fine outside plan construction.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}
