package other

import "net/http"

// Unscoped package: the boundary rules do not apply here.
func Handle(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError) // fine: not a serve package
	panic("also fine here")
}
