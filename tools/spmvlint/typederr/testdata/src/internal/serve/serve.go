package serve

import (
	"errors"
	"fmt"
	"net/http"

	"envelope"
)

func handler(w http.ResponseWriter) {
	http.Error(w, "boom", 500)                    // want `http.Error bypasses the error envelope`
	w.WriteHeader(http.StatusBadGateway)          // want `WriteHeader\(502\) outside an //spmv:errwriter helper`
	w.WriteHeader(http.StatusOK)                  // fine: success statuses carry no envelope
	envelope.Write(w, 500, fmt.Errorf("x %d", 1)) // want `untyped fmt.Errorf crosses the API boundary through Write`
	envelope.Write(w, 500, errors.New("x"))       // want `untyped errors.New crosses the API boundary through Write`
	envelope.Write(w, 500, errBadShape)           // fine: a typed, named error value
	writeLocal(w, 500, errBadShape)
}

var errBadShape = errors.New("bad shape")

// writeLocal is a same-package envelope helper.
//
//spmv:errwriter
func writeLocal(w http.ResponseWriter, status int, err error) {
	w.WriteHeader(status) // fine: inside an errwriter
	_, _ = w.Write([]byte(err.Error()))
}

//spmv:dimcheck
func mustSquare(n, m int) {
	if n != m {
		panic("dimension mismatch") // fine: documented dimcheck helper
	}
}

func faulty(n int) {
	if n < 0 {
		panic("faultinject: negative") //spmvlint:allowpanic contained by the worker recover
	}
	panic("unreachable state") // want `panic in a serve package; only //spmv:dimcheck helpers may panic`
}
