package envelope

import "net/http"

// Write is the envelope helper handlers must route errors through.
//
//spmv:errwriter
func Write(w http.ResponseWriter, status int, err error) {
	w.WriteHeader(status)
	_, _ = w.Write([]byte(err.Error()))
}
