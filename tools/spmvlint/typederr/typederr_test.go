package typederr_test

import (
	"testing"

	"repro/tools/spmvlint/internal/analysistest"
	"repro/tools/spmvlint/typederr"
)

func TestTypedErr(t *testing.T) {
	analysistest.Run(t, "testdata", typederr.Analyzer, "envelope", "other", "internal/serve")
}
