// Package typederr pins the serving layer's typed-error contract: every
// error that crosses the HTTP API boundary flows through the envelope
// helpers, so clients always get the {error, code, retryable,
// retry_after_ms} shape with a stable code.
//
// Within the scoped packages (default: any package whose import path
// ends in internal/serve):
//
//   - no calls to http.Error — it writes text/plain with no envelope
//   - no WriteHeader with a constant status >= 400 outside functions
//     annotated //spmv:errwriter (the envelope writers themselves)
//   - no fmt.Errorf / errors.New value passed directly to an
//     //spmv:errwriter function — an untyped error arrives at writeError
//     with no matching case and falls through to a generic 500
//   - no panic outside functions annotated //spmv:dimcheck (documented
//     dimension-check helpers) or statements annotated
//     //spmvlint:allowpanic (deliberate fault-injection sites contained
//     by a recover upstream)
//
// The //spmv:errwriter annotation is exported as a fact, so helpers may
// live in a different package than the handlers that call them. Only
// direct call arguments are audited — an untyped error laundered
// through a variable is the documented blind spot, covered by the
// contract tests that enumerate every endpoint x code pair.
package typederr

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/tools/spmvlint/internal/lintutil"
)

// ErrWriterFact marks a function annotated //spmv:errwriter.
type ErrWriterFact struct{}

func (*ErrWriterFact) AFact()         {}
func (*ErrWriterFact) String() string { return "errwriter" }

var Analyzer = &analysis.Analyzer{
	Name:      "typederr",
	Doc:       "reports error emissions that bypass the typed envelope helpers in the serve packages",
	Run:       run,
	FactTypes: []analysis.Fact{new(ErrWriterFact)},
}

// Pkgs is the comma-separated list of import-path suffixes the
// boundary rules apply to.
var Pkgs = "internal/serve"

func init() {
	Analyzer.Flags.StringVar(&Pkgs, "pkgs", Pkgs, "comma-separated import-path suffixes holding API handlers")
}

func scoped(path string) bool {
	for _, suf := range strings.Split(Pkgs, ",") {
		suf = strings.TrimSpace(suf)
		if suf != "" && (path == suf || strings.HasSuffix(path, "/"+suf)) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	files := lintutil.NonTestFiles(pass)

	// Export //spmv:errwriter facts from every package, so helpers can
	// live outside the scoped ones.
	local := make(map[*types.Func]bool)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if lintutil.FuncHas(fd, lintutil.MarkErrWriter) {
				local[obj] = true
				pass.ExportObjectFact(obj, new(ErrWriterFact))
			}
		}
	}

	if !scoped(pass.Pkg.Path()) {
		return nil, nil
	}

	isErrWriter := func(fn *types.Func) bool {
		if local[fn] {
			return true
		}
		return pass.ImportObjectFact(fn, new(ErrWriterFact))
	}

	marks := lintutil.NewStmtMarks(pass.Fset, files...)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			inErrWriter := obj != nil && local[obj]
			inDimCheck := lintutil.FuncHas(fd, lintutil.MarkDimCheck)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCall(pass, call, marks, inErrWriter, inDimCheck, isErrWriter)
				return true
			})
		}
	}
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, marks *lintutil.StmtMarksSet,
	inErrWriter, inDimCheck bool, isErrWriter func(*types.Func) bool) {

	// panic(...)
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "panic" && !inDimCheck && !marks.Has(call.Pos(), lintutil.MarkAllowPanic) {
				pass.Reportf(call.Pos(), "panic in a serve package; only //spmv:dimcheck helpers may panic (or annotate the statement //spmvlint:allowpanic for a contained fault-injection site)")
			}
			return
		}
	}

	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}

	switch fn.FullName() {
	case "net/http.Error":
		pass.Reportf(call.Pos(), "http.Error bypasses the error envelope; use the //spmv:errwriter helpers")
		return
	case "(net/http.ResponseWriter).WriteHeader":
		if inErrWriter || len(call.Args) != 1 {
			return
		}
		if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
			if code, ok := constant.Int64Val(tv.Value); ok && code >= 400 {
				pass.Reportf(call.Pos(), "WriteHeader(%d) outside an //spmv:errwriter helper; error statuses must carry the envelope", code)
			}
		}
		return
	}

	if !isErrWriter(fn) {
		return
	}
	for _, arg := range call.Args {
		ac, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok {
			continue
		}
		af := calleeFunc(pass, ac)
		if af == nil {
			continue
		}
		switch af.FullName() {
		case "fmt.Errorf", "errors.New":
			pass.Reportf(arg.Pos(), "untyped %s crosses the API boundary through %s; use a typed serve error (writeError maps it to a stable code) or writeErrCode with an explicit code", af.FullName(), fn.Name())
		}
	}
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
