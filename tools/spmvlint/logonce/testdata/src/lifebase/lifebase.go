package lifebase

import "log/slog"

// Build logs its lifecycle event from exactly one site.
func Build(name string) {
	slog.Info("engine built", slog.String("event", "build"), slog.String("matrix", name))
}

// Drain logs its lifecycle event from exactly one site — the site this
// package exports, which lifeapp then duplicates.
func Drain(name string) {
	slog.Warn("draining", slog.String("event", "drain"), slog.String("matrix", name))
}
