package lifeapp

import (
	"log/slog"

	"lifebase"
)

func evictOne(name string) {
	slog.Info("evicted", slog.String("event", "evict"), slog.String("matrix", name))
}

func evictAll(names []string) {
	for _, n := range names {
		slog.Info("evicted", slog.String("event", "evict"), slog.String("matrix", n)) // want `lifecycle event "evict" is already logged at lifeapp/lifeapp\.go:\d+`
	}
}

func drainHere(name string) {
	lifebase.Drain(name)
	slog.Warn("draining", slog.String("event", "drain"), slog.String("matrix", name)) // want `lifecycle event "drain" is already logged at lifebase/lifebase\.go:\d+`
}

// breaker is the identifier pattern: each literal assigned to event is
// its own site, and each appears once.
func breaker(open bool) {
	event := "breaker_open"
	if !open {
		event = "breaker_closed"
	}
	slog.Info("breaker", slog.String("event", event))
}

// debugTicks is untracked vocabulary; duplicates are fine.
func debugTicks() {
	slog.Debug("tick", slog.String("event", "debug_tick"))
	slog.Debug("tick", slog.String("event", "debug_tick"))
}
