// Package logonce pins the exactly-once lifecycle logging contract:
// each lifecycle event string (build, evict, quarantine, breaker_*,
// drain, ...) is emitted from exactly one slog call site, so counting
// log records by event (obs.EventCounter) counts state transitions.
// Two call sites for one event would double-count transitions — or
// worse, half-migrate a rename.
//
// A call site is recognized as `slog.String("event", X)` where X is a
// string literal, or an identifier whose enclosing function assigns it
// one or more literals (the breaker pattern: `event := "breaker_open"`
// on one branch, `"breaker_closed"` on another — each literal is its
// own site). Only the configured lifecycle events are tracked; debug
// and per-request events may appear anywhere. Sites are exported as a
// package fact merged up the import graph, so two packages logging the
// same event are caught in the first package that imports both.
// Emission through a handle other than slog.String (slog.Attr, With
// groups) is the documented blind spot.
package logonce

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/tools/spmvlint/internal/lintutil"
)

// Sites is the package fact: every known lifecycle event logged in this
// package or anything it imports, with its call sites.
type Sites struct {
	Entries []Entry
}

type Entry struct {
	Event string
	Sites []string // "pkgpath/file.go:line", sorted
}

func (*Sites) AFact()           {}
func (s *Sites) String() string { return fmt.Sprintf("logonce(%d events)", len(s.Entries)) }

// Events is the comma-separated lifecycle vocabulary under the
// exactly-once contract.
var Events = "build,build_failed,evict,quarantine,breaker_open,breaker_half_open,breaker_closed,drain,undrain"

var Analyzer = &analysis.Analyzer{
	Name:      "logonce",
	Doc:       "reports lifecycle event strings logged from more than one slog call site",
	Run:       run,
	FactTypes: []analysis.Fact{new(Sites)},
}

func init() {
	Analyzer.Flags.StringVar(&Events, "events", Events, "comma-separated lifecycle events under the exactly-once contract")
}

func run(pass *analysis.Pass) (interface{}, error) {
	tracked := make(map[string]bool)
	for _, e := range strings.Split(Events, ",") {
		if e = strings.TrimSpace(e); e != "" {
			tracked[e] = true
		}
	}

	// Local sites: event -> site string -> position.
	type localSite struct {
		site string
		pos  ast.Node
	}
	localSites := make(map[string][]localSite)
	addLocal := func(event string, n ast.Node) {
		p := pass.Fset.Position(n.Pos())
		site := pass.Pkg.Path() + "/" + filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
		for _, s := range localSites[event] {
			if s.site == site {
				return
			}
		}
		localSites[event] = append(localSites[event], localSite{site, n})
	}

	for _, f := range lintutil.NonTestFiles(pass) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				arg := slogEventArg(pass, call)
				if arg == nil {
					return true
				}
				switch x := ast.Unparen(arg).(type) {
				case *ast.BasicLit:
					if lit, err := strconv.Unquote(x.Value); err == nil && tracked[lit] {
						addLocal(lit, call)
					}
				case *ast.Ident:
					// The breaker pattern: each tracked literal assigned
					// to the identifier in this function is a site at
					// its assignment. Sorted so site registration (and
					// therefore duplicate-report order) is stable.
					las := literalAssignments(fd, x.Name)
					lits := make([]string, 0, len(las))
					for lit := range las {
						lits = append(lits, lit)
					}
					sort.Strings(lits)
					for _, lit := range lits {
						if tracked[lit] {
							addLocal(lit, las[lit])
						}
					}
				}
				return true
			})
		}
	}

	// Merge the facts of direct imports. Each fact is already the union
	// of its own subtree, so the merged view covers everything below.
	merged := make(map[string]map[string]bool) // event -> site set
	importHas := make(map[string]map[string]map[string]bool)
	for _, imp := range pass.Pkg.Imports() {
		var f Sites
		if !pass.ImportPackageFact(imp, &f) {
			continue
		}
		per := make(map[string]map[string]bool)
		for _, e := range f.Entries {
			for _, s := range e.Sites {
				if merged[e.Event] == nil {
					merged[e.Event] = make(map[string]bool)
				}
				merged[e.Event][s] = true
				if per[e.Event] == nil {
					per[e.Event] = make(map[string]bool)
				}
				per[e.Event][s] = true
			}
		}
		importHas[imp.Path()] = per
	}

	// Report: a local site duplicating any other site (local or
	// imported) reports here; an imported-vs-imported duplicate reports
	// here only if no single import already saw both (that import — or
	// something below it — already reported).
	var localEvents []string
	for e := range localSites {
		localEvents = append(localEvents, e)
	}
	sort.Strings(localEvents)
	for _, event := range localEvents {
		sites := localSites[event]
		others := len(merged[event])
		for i, s := range sites {
			if i > 0 || others > 0 {
				var prior []string
				for o := range merged[event] {
					prior = append(prior, o)
				}
				for _, p := range sites[:i] {
					prior = append(prior, p.site)
				}
				sort.Strings(prior)
				pass.Reportf(s.pos.Pos(), "lifecycle event %q is already logged at %s; the exactly-once contract allows one slog site per event", event, strings.Join(prior, ", "))
			}
		}
	}
	var mergedEvents []string
	for e := range merged {
		mergedEvents = append(mergedEvents, e)
	}
	sort.Strings(mergedEvents)
	for _, event := range mergedEvents {
		set := merged[event]
		if len(set) < 2 || len(localSites[event]) > 0 {
			continue
		}
		covered := false
		for _, per := range importHas { //spmvlint:unordered existence check; any covering import suffices
			all := true
			for s := range set { //spmvlint:unordered universal quantification; result independent of order
				if !per[event][s] {
					all = false
					break
				}
			}
			if all {
				covered = true
				break
			}
		}
		if !covered && len(pass.Files) > 0 {
			var all []string
			for s := range set {
				all = append(all, s)
			}
			sort.Strings(all)
			pass.Reportf(pass.Files[0].Pos(), "imports log lifecycle event %q from %d sites (%s); the exactly-once contract allows one", event, len(all), strings.Join(all, ", "))
		}
	}

	// Export the union.
	union := make(map[string]map[string]bool)
	for e, set := range merged {
		union[e] = make(map[string]bool)
		for s := range set {
			union[e][s] = true
		}
	}
	for e, sites := range localSites {
		if union[e] == nil {
			union[e] = make(map[string]bool)
		}
		for _, s := range sites {
			union[e][s.site] = true
		}
	}
	if len(union) > 0 {
		out := Sites{}
		for e, set := range union { //spmvlint:unordered entries and their sites are sorted after collection
			var ss []string
			for s := range set {
				ss = append(ss, s)
			}
			sort.Strings(ss)
			out.Entries = append(out.Entries, Entry{Event: e, Sites: ss})
		}
		sort.Slice(out.Entries, func(i, j int) bool { return out.Entries[i].Event < out.Entries[j].Event })
		pass.ExportPackageFact(&out)
	}
	return nil, nil
}

// slogEventArg matches slog.String("event", X) and returns X.
func slogEventArg(pass *analysis.Pass, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 2 {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.FullName() != "log/slog.String" {
		return nil
	}
	key, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return nil
	}
	if k, err := strconv.Unquote(key.Value); err != nil || k != "event" {
		return nil
	}
	return call.Args[1]
}

// literalAssignments finds every string literal assigned to name inside
// fn (e.g. `event, lvl := "breaker_closed", slog.LevelInfo` and the
// later `event, lvl = "breaker_open", slog.LevelWarn`).
func literalAssignments(fn *ast.FuncDecl, name string) map[string]ast.Node {
	out := make(map[string]ast.Node)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name != name {
				continue
			}
			if lit, ok := ast.Unparen(as.Rhs[i]).(*ast.BasicLit); ok {
				if v, err := strconv.Unquote(lit.Value); err == nil {
					out[v] = as
				}
			}
		}
		return true
	})
	return out
}
