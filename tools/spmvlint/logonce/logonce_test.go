package logonce_test

import (
	"testing"

	"repro/tools/spmvlint/internal/analysistest"
	"repro/tools/spmvlint/logonce"
)

func TestLogOnce(t *testing.T) {
	analysistest.Run(t, "testdata", logonce.Analyzer, "lifebase", "lifeapp")
}
