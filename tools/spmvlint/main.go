// Command spmvlint is the project's static-analysis suite: custom
// go/analysis passes that pin the codebase's load-bearing contracts —
// allocation-free hot paths, bitwise-deterministic plan construction
// and exposition, typed error envelopes on the serve surface, and
// exactly-once lifecycle logging — at every call site in every branch.
//
// Two modes:
//
//	go vet -vettool=$(which spmvlint) ./...   # unitchecker protocol (CI)
//	spmvlint ./...                            # standalone, own loader
//
// The standalone mode needs only the go toolchain: it loads packages
// via `go list -deps -export -json`, typechecks the module's sources,
// and runs the analyzers with in-process facts.
package main

import (
	"fmt"
	"os"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/tools/spmvlint/detrange"
	"repro/tools/spmvlint/hotpathalloc"
	"repro/tools/spmvlint/internal/driver"
	"repro/tools/spmvlint/logonce"
	"repro/tools/spmvlint/typederr"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		hotpathalloc.Analyzer,
		detrange.Analyzer,
		typederr.Analyzer,
		logonce.Analyzer,
	}
}

func main() {
	// `go vet -vettool=` drives the unitchecker protocol: a lone
	// *.cfg argument per compilation unit, plus -flags / -V=full
	// handshakes. Everything else is the standalone driver.
	for _, a := range os.Args[1:] {
		if strings.HasSuffix(a, ".cfg") || a == "-flags" || strings.HasPrefix(a, "-V") {
			unitchecker.Main(analyzers()...) // does not return
		}
	}
	diags, err := driver.Run(os.Args[1:], analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmvlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
